"""Hash indexes over relations.

The coordinator's base-result structure is "indexed on K, which allows us
to efficiently determine RNG(X, t, θ_K) for any tuple t in H" (Section
3.2 of the paper) — :class:`HashIndex` is that structure. It maps a tuple
of key-attribute values to the list of row positions holding that key.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.relalg.relation import Relation


class HashIndex:
    """A hash index from key-attribute values to row positions."""

    __slots__ = ("key_names", "_positions", "_buckets")

    def __init__(self, relation: Relation, key_names: Sequence[str]):
        self.key_names = tuple(key_names)
        self._positions = relation.schema.positions(self.key_names)
        self._buckets: dict = {}
        # Build from the key columns only: zipping the key-attribute value
        # vectors touches just the indexed columns instead of materializing
        # (or re-indexing into) every full row tuple.
        columnar = relation.to_columnar()
        key_columns = [columnar.columns[position].values for position in self._positions]
        setdefault = self._buckets.setdefault
        for row_index, key in enumerate(zip(*key_columns)):
            setdefault(key, []).append(row_index)
        if not key_columns:
            for row_index in range(len(relation.rows)):
                setdefault((), []).append(row_index)

    def key_of(self, row: tuple) -> tuple:
        """Extract this index's key from a row of the indexed relation."""
        return tuple(row[position] for position in self._positions)

    def lookup(self, key: tuple) -> list:
        """Row positions matching ``key`` (empty list when absent)."""
        return self._buckets.get(key, [])

    def __contains__(self, key: tuple) -> bool:
        return key in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)

    def keys(self) -> Iterator[tuple]:
        return iter(self._buckets)

    @property
    def is_unique(self) -> bool:
        """True when no key maps to more than one row (K is a key)."""
        return all(len(rows) == 1 for rows in self._buckets.values())
