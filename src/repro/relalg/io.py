"""CSV import/export for relations.

Real deployments load collected trace files into the local warehouses;
this module provides that ingestion path (and the symmetric export used
by the examples to hand results to other tools). The format is standard
RFC-4180-style CSV via the stdlib ``csv`` module, with a typed header
convention so round-trips preserve schemas:

    name:type,name:type,...

Values are rendered with ``str``; NULL is the empty field. Booleans are
``true``/``false``; dates are ISO ``YYYY-MM-DD``.
"""

from __future__ import annotations

import csv
import datetime
import io
from typing import TextIO, Union

from repro.errors import SerializationError
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Attribute, Schema


def write_csv(relation: Relation, destination: Union[str, TextIO]) -> None:
    """Write a relation to a path or text stream with a typed header."""
    if isinstance(destination, str):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write(relation, handle)
    else:
        _write(relation, destination)


def _write(relation: Relation, handle: TextIO) -> None:
    writer = csv.writer(handle)
    writer.writerow(
        f"{attribute.name}:{attribute.type}" for attribute in relation.schema
    )
    for row in relation.rows:
        writer.writerow("" if value is None else _render(value) for value in row)


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def read_csv(source: Union[str, TextIO]) -> Relation:
    """Read a relation written by :func:`write_csv`."""
    if isinstance(source, str):
        with open(source, "r", newline="", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def _read(handle: TextIO) -> Relation:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise SerializationError("empty CSV: no header row") from None
    attributes = []
    for column in header:
        name, separator, type_name = column.partition(":")
        if not separator:
            raise SerializationError(
                f"header column {column!r} lacks the name:type convention"
            )
        attributes.append(Attribute(name, type_name))
    schema = Schema(attributes)
    parsers = [_PARSERS[attribute.type] for attribute in schema]
    rows = []
    for line_number, record in enumerate(reader, start=2):
        if len(record) != len(attributes):
            raise SerializationError(
                f"line {line_number}: {len(record)} fields, schema has {len(attributes)}"
            )
        try:
            rows.append(
                tuple(
                    None if field == "" else parser(field)
                    for field, parser in zip(record, parsers)
                )
            )
        except ValueError as exc:
            raise SerializationError(f"line {line_number}: {exc}") from exc
    return Relation(schema, rows)


def _parse_bool(field: str) -> bool:
    lowered = field.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    raise ValueError(f"not a boolean: {field!r}")


_PARSERS = {
    INT: int,
    FLOAT: float,
    STR: str,
    BOOL: _parse_bool,
    DATE: datetime.date.fromisoformat,
}


def to_csv_text(relation: Relation) -> str:
    """Render a relation as a CSV string (typed header included)."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


def from_csv_text(text: str) -> Relation:
    """Parse a CSV string produced by :func:`to_csv_text`."""
    return read_csv(io.StringIO(text))
