"""Relational algebra operators over :class:`Relation`.

These complement the cheap per-relation methods on :class:`Relation`
(select/project/distinct/...) with the binary operators — joins, set
operations — and conventional SQL ``GROUP BY`` aggregation.

``group_by`` exists for two reasons: it is the natural baseline to
compare GMDJ evaluation against in tests, and the OLAP front-end uses it
for purely-local pre-aggregation steps.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SchemaError
from repro.relalg import compiler, engine
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR, Expr
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema


def cross(left: Relation, right: Relation) -> Relation:
    """Cartesian product; attribute names must not clash."""
    schema = left.schema.concat(right.schema)
    rows = [l_row + r_row for l_row in left.rows for r_row in right.rows]
    return Relation(schema, rows)


def equi_join(left: Relation, right: Relation, pairs: Sequence[tuple]) -> Relation:
    """Hash equi-join on ``[(left_attr, right_attr), ...]`` pairs."""
    if not pairs:
        return cross(left, right)
    left_positions = left.schema.positions([pair[0] for pair in pairs])
    right_positions = right.schema.positions([pair[1] for pair in pairs])
    table: dict = {}
    for row in right.rows:
        key = tuple(row[position] for position in right_positions)
        table.setdefault(key, []).append(row)
    schema = left.schema.concat(right.schema)
    rows = []
    for l_row in left.rows:
        key = tuple(l_row[position] for position in left_positions)
        for r_row in table.get(key, ()):
            rows.append(l_row + r_row)
    return Relation(schema, rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Join on all shared attribute names; right copies are dropped."""
    shared = [name for name in left.schema.names if name in right.schema]
    if not shared:
        return cross(left, right)
    right_rest = [name for name in right.schema.names if name not in shared]
    joined = equi_join(left, right.project(shared + right_rest).rename(
        {name: f"__rhs_{name}" for name in shared}
    ), [(name, f"__rhs_{name}") for name in shared])
    keep = list(left.schema.names) + right_rest
    return joined.project(keep)


def theta_join(left: Relation, right: Relation, condition: Expr) -> Relation:
    """Nested-loop join; condition fields use ``base`` (left) / ``detail`` (right)."""
    schema = left.schema.concat(right.schema)
    schemas = {BASE_VAR: left.schema, DETAIL_VAR: right.schema}
    if engine.active_engine() == "columnar":
        # Vectorized probe: one generated scan over the right relation's
        # column vectors per left row, instead of a predicate call per pair.
        mask = compiler.compile_mask(
            condition, schemas, (BASE_VAR, DETAIL_VAR), DETAIL_VAR
        )
        columns = right.to_columnar().value_lists()
        right_count = len(right.rows)
        right_rows = right.rows
        rows = []
        for l_row in left.rows:
            for index in mask(right_count, columns, l_row):
                rows.append(l_row + right_rows[index])
        return Relation(schema, rows)
    predicate = compiler.compile_predicate(
        condition, schemas, (BASE_VAR, DETAIL_VAR)
    )
    rows = []
    for l_row in left.rows:
        for r_row in right.rows:
            if predicate(l_row, r_row):
                rows.append(l_row + r_row)
    return Relation(schema, rows)


def semijoin(left: Relation, right: Relation, pairs: Sequence[tuple]) -> Relation:
    """Left rows with at least one equi-match in ``right``."""
    left_positions = left.schema.positions([pair[0] for pair in pairs])
    right_positions = right.schema.positions([pair[1] for pair in pairs])
    keys = {tuple(row[position] for position in right_positions) for row in right.rows}
    return Relation(
        left.schema,
        (
            row
            for row in left.rows
            if tuple(row[position] for position in left_positions) in keys
        ),
    )


def antijoin(left: Relation, right: Relation, pairs: Sequence[tuple]) -> Relation:
    """Left rows with no equi-match in ``right``."""
    left_positions = left.schema.positions([pair[0] for pair in pairs])
    right_positions = right.schema.positions([pair[1] for pair in pairs])
    keys = {tuple(row[position] for position in right_positions) for row in right.rows}
    return Relation(
        left.schema,
        (
            row
            for row in left.rows
            if tuple(row[position] for position in left_positions) not in keys
        ),
    )


def union_all(relations: Sequence[Relation]) -> Relation:
    """Multiset union of one or more same-schema relations."""
    if not relations:
        raise SchemaError("union_all of zero relations")
    result = relations[0]
    for relation in relations[1:]:
        result = result.union_all(relation)
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """Multiset difference (each right row cancels one left occurrence)."""
    if left.schema != right.schema:
        raise SchemaError("difference over incompatible schemas")
    remaining = right.row_multiset()
    rows = []
    for row in left.rows:
        if remaining.get(row, 0) > 0:
            remaining[row] -= 1
        else:
            rows.append(row)
    return Relation(left.schema, rows)


def group_by(
    relation: Relation,
    keys: Sequence[str],
    aggs: Sequence[AggSpec],
    having: Optional[Expr] = None,
) -> Relation:
    """Conventional SQL GROUP BY aggregation (disjoint groups).

    This is *not* how GMDJs are evaluated (their groups may overlap, see
    Section 2.2 of the paper) — it is the baseline / local-utility
    operator. Aggregate input expressions see the relation unqualified or
    via the ``detail`` namespace.
    """
    key_positions = relation.schema.positions(keys)
    input_funcs = [spec.compile_input(relation.schema) for spec in aggs]
    groups: dict = {}
    order: list = []
    for row in relation.rows:
        key = tuple(row[position] for position in key_positions)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [spec.accumulator() for spec in aggs]
            groups[key] = accumulators
            order.append(key)
        bound = {None: row, DETAIL_VAR: row}
        for accumulator, input_func in zip(accumulators, input_funcs):
            accumulator.update(None if input_func is None else input_func(bound))
    schema = relation.schema.project(keys).concat(
        Schema([spec.result_attribute() for spec in aggs])
    )
    rows = []
    for key in order:
        rows.append(key + tuple(accumulator.result() for accumulator in groups[key]))
    result = Relation(schema, rows)
    if having is not None:
        result = result.select(having)
    return result
