"""Structural analysis of predicate expressions.

This module provides the reasoning primitives used by the Skalla
optimizer (``repro.gmdj.analysis``):

- decomposition of conditions into conjuncts and disjuncts;
- classification of which relation variables an expression touches;
- extraction of base/detail *equality atoms* from GMDJ conditions (these
  drive hash-based GMDJ evaluation and key-entailment checks);
- a small interval-arithmetic engine and attribute-domain extraction from
  site predicates φᵢ (these drive distribution-aware group reduction,
  Theorem 4 of the paper).

All analyses are conservative: when an expression is too complex to
analyze the functions return "don't know" (``None`` / empty results), and
callers fall back to unoptimized-but-correct behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.relalg.expressions import (
    And,
    Arith,
    Between,
    Comparison,
    Const,
    Expr,
    Field,
    InSet,
    Neg,
    Or,
)

# ---------------------------------------------------------------------------
# Boolean structure
# ---------------------------------------------------------------------------


def conjuncts(expression: Expr) -> list:
    """Flatten a tree of ``And`` nodes into a list of conjuncts."""
    result = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.append(node.right)
            stack.append(node.left)
        else:
            result.append(node)
    result.reverse()
    return result


def disjuncts(expression: Expr) -> list:
    """Flatten a tree of ``Or`` nodes into a list of disjuncts."""
    result = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, Or):
            stack.append(node.right)
            stack.append(node.left)
        else:
            result.append(node)
    result.reverse()
    return result


def is_trivially_true(expression: Expr) -> bool:
    return isinstance(expression, Const) and expression.value is True


def is_trivially_false(expression: Expr) -> bool:
    return isinstance(expression, Const) and expression.value is False


def sides(expression: Expr) -> frozenset:
    """Relation variables an expression references (``frozenset`` of relvars)."""
    return expression.relvars()


def references_only(expression: Expr, relvar) -> bool:
    """True if every field of ``expression`` is on ``relvar`` (or none at all)."""
    return sides(expression) <= frozenset([relvar])


# ---------------------------------------------------------------------------
# Equality atoms of GMDJ conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EqualityAtom:
    """A conjunct ``base_expr == detail_expr`` (sides already oriented)."""

    base_expr: Expr
    detail_expr: Expr


@dataclass(frozen=True)
class ConditionSplit:
    """A GMDJ condition split for hash evaluation.

    ``atoms`` are the base/detail equality atoms; ``base_only`` are
    conjuncts touching only the base relation; ``detail_only`` touch only
    the detail relation; ``residual`` are the remaining mixed conjuncts
    that must be checked per candidate pair.
    """

    atoms: tuple
    base_only: tuple
    detail_only: tuple
    residual: tuple

    @property
    def hashable(self) -> bool:
        return bool(self.atoms)


def split_condition(theta: Expr, base_var: str, detail_var: str) -> ConditionSplit:
    """Split a GMDJ condition into equality atoms and residual conjuncts."""
    atoms = []
    base_only = []
    detail_only = []
    residual = []
    for conjunct in conjuncts(theta):
        atom = _orient_equality(conjunct, base_var, detail_var)
        if atom is not None:
            atoms.append(atom)
            continue
        vars_used = sides(conjunct)
        if vars_used <= frozenset([base_var]):
            base_only.append(conjunct)
        elif vars_used <= frozenset([detail_var]):
            detail_only.append(conjunct)
        elif not vars_used:
            base_only.append(conjunct)  # constant condition, cheap either way
        else:
            residual.append(conjunct)
    return ConditionSplit(tuple(atoms), tuple(base_only), tuple(detail_only), tuple(residual))


def _orient_equality(conjunct: Expr, base_var: str, detail_var: str) -> Optional[EqualityAtom]:
    if not (isinstance(conjunct, Comparison) and conjunct.op == "=="):
        return None
    left_vars = sides(conjunct.left)
    right_vars = sides(conjunct.right)
    base_set = frozenset([base_var])
    detail_set = frozenset([detail_var])
    if left_vars <= base_set and right_vars == detail_set and left_vars:
        return EqualityAtom(conjunct.left, conjunct.right)
    if left_vars == detail_set and right_vars <= base_set and right_vars:
        return EqualityAtom(conjunct.right, conjunct.left)
    return None


def key_equality_condition(key_attrs: Sequence[str], base_var: str, detail_var: str) -> Expr:
    """Build θ_K: pairwise equality on the key attributes (Theorem 1)."""
    condition = None
    for name in key_attrs:
        atom = Comparison("==", Field(name, base_var), Field(name, detail_var))
        condition = atom if condition is None else And(condition, atom)
    if condition is None:
        raise ValueError("key attribute list must not be empty")
    return condition


def entails_key_equality(theta: Expr, key_attrs: Sequence[str], base_var: str, detail_var: str) -> bool:
    """Check (syntactically) that θ entails equality on all key attributes.

    True when for every key attribute ``k`` the condition contains the
    conjunct ``b.k == r.k`` (either orientation). This is the sufficient
    test used for Proposition 2 and Corollary 1; it is conservative.
    """
    split = split_condition(theta, base_var, detail_var)
    equal_attr_pairs = set()
    for atom in split.atoms:
        if isinstance(atom.base_expr, Field) and isinstance(atom.detail_expr, Field):
            equal_attr_pairs.add((atom.base_expr.name, atom.detail_expr.name))
    return all((key, key) in equal_attr_pairs for key in key_attrs)


# ---------------------------------------------------------------------------
# Intervals and attribute domains
# ---------------------------------------------------------------------------

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed numeric interval ``[low, high]`` (∞ endpoints allowed).

    Only closed endpoints are modelled; open bounds are widened to closed
    ones, which keeps all derived conditions *necessary* (safe for group
    reduction — we may ship slightly more than needed, never less).
    """

    low: float = -_INF
    high: float = _INF

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    @classmethod
    def point(cls, value) -> "Interval":
        return cls(value, value)

    @classmethod
    def unbounded(cls) -> "Interval":
        return cls()

    @property
    def is_point(self) -> bool:
        return self.low == self.high

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.low - other.high, self.high - other.low)

    def __mul__(self, other: "Interval") -> "Interval":
        products = []
        for a in (self.low, self.high):
            for b in (other.low, other.high):
                products.append(_mul_bound(a, b))
        return Interval(min(products), max(products))

    def __neg__(self) -> "Interval":
        return Interval(-self.high, -self.low)

    def divide(self, other: "Interval") -> Optional["Interval"]:
        """Interval division; ``None`` when the divisor straddles zero."""
        if other.low <= 0 <= other.high:
            return None
        quotients = []
        for a in (self.low, self.high):
            for b in (other.low, other.high):
                quotients.append(a / b)
        return Interval(min(quotients), max(quotients))

    def intersects(self, other: "Interval") -> bool:
        return self.low <= other.high and other.low <= self.high

    def contains(self, value) -> bool:
        return self.low <= value <= self.high


def _mul_bound(a: float, b: float) -> float:
    # inf * 0 is nan under IEEE; for interval bounds the correct limit is 0.
    if a == 0 or b == 0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Domain:
    """Known domain of a detail attribute at one site.

    Either a finite ``values`` set (from equality / IN predicates) or an
    ``interval`` (from range predicates). A finite set also induces an
    interval when all its members are numeric.
    """

    values: Optional[frozenset] = None
    interval: Interval = Interval.unbounded()

    @classmethod
    def of_values(cls, values) -> "Domain":
        values = frozenset(values)
        numeric = [value for value in values if isinstance(value, (int, float))]
        if numeric and len(numeric) == len(values):
            return cls(values, Interval(min(numeric), max(numeric)))
        return cls(values, Interval.unbounded())

    @classmethod
    def of_interval(cls, low, high) -> "Domain":
        return cls(None, Interval(low, high))

    def intersect(self, other: "Domain") -> "Domain":
        if self.values is not None and other.values is not None:
            return Domain.of_values(self.values & other.values)
        values = self.values if self.values is not None else other.values
        low = max(self.interval.low, other.interval.low)
        high = min(self.interval.high, other.interval.high)
        if low > high:
            return Domain.of_values(frozenset())
        if values is not None:
            kept = frozenset(
                value
                for value in values
                if not isinstance(value, (int, float)) or low <= value <= high
            )
            return Domain.of_values(kept)
        return Domain(None, Interval(low, high))

    @property
    def is_empty(self) -> bool:
        return self.values is not None and not self.values


def domains_from_predicate(phi: Expr, relvar) -> dict:
    """Extract per-attribute domains implied by a site predicate φ.

    Handles conjunctions of: ``attr == const``, ``attr IN (...)``,
    ``attr BETWEEN lo AND hi``, and ``attr <op> const`` range comparisons.
    Attributes constrained in ways this cannot parse simply get no entry
    (unbounded), which is conservative.
    """
    domains: dict = {}

    def narrow(name: str, domain: Domain) -> None:
        current = domains.get(name)
        domains[name] = domain if current is None else current.intersect(domain)

    for conjunct in conjuncts(phi):
        parsed = _parse_attr_constraint(conjunct, relvar)
        if parsed is not None:
            name, domain = parsed
            narrow(name, domain)
    return domains


def _parse_attr_constraint(conjunct: Expr, relvar) -> Optional[tuple]:
    if isinstance(conjunct, InSet):
        operand = conjunct.operand
        if isinstance(operand, Field) and operand.relvar == relvar:
            return operand.name, Domain.of_values(conjunct.values)
        return None
    if isinstance(conjunct, Between):
        operand = conjunct.operand
        if (
            isinstance(operand, Field)
            and operand.relvar == relvar
            and isinstance(conjunct.low, Const)
            and isinstance(conjunct.high, Const)
        ):
            return operand.name, Domain.of_interval(conjunct.low.value, conjunct.high.value)
        return None
    if isinstance(conjunct, Comparison):
        comparison = conjunct
        if isinstance(comparison.right, Field) and isinstance(comparison.left, Const):
            comparison = comparison.mirrored()
        if not (
            isinstance(comparison.left, Field)
            and comparison.left.relvar == relvar
            and isinstance(comparison.right, Const)
        ):
            return None
        name = comparison.left.name
        value = comparison.right.value
        if comparison.op == "==":
            return name, Domain.of_values([value])
        if not isinstance(value, (int, float)):
            return None
        if comparison.op in ("<", "<="):
            return name, Domain.of_interval(-_INF, value)
        if comparison.op in (">", ">="):
            return name, Domain.of_interval(value, _INF)
        return None
    return None


def interval_of(expression: Expr, relvar, domains: dict) -> Optional[Interval]:
    """Interval of a numeric expression over ``relvar`` under ``domains``.

    Returns ``None`` when the expression involves operations or attributes
    whose range cannot be bounded.
    """
    if isinstance(expression, Const):
        value = expression.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return Interval.point(value)
    if isinstance(expression, Field):
        if expression.relvar != relvar:
            return None
        domain = domains.get(expression.name)
        if domain is None:
            return Interval.unbounded()
        return domain.interval
    if isinstance(expression, Neg):
        inner = interval_of(expression.operand, relvar, domains)
        return None if inner is None else -inner
    if isinstance(expression, Arith):
        left = interval_of(expression.left, relvar, domains)
        right = interval_of(expression.right, relvar, domains)
        if left is None or right is None:
            return None
        if expression.op == "+":
            return left + right
        if expression.op == "-":
            return left - right
        if expression.op == "*":
            return left * right
        if expression.op == "/":
            return left.divide(right)
        return None
    return None
