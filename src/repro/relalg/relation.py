"""In-memory relations: a schema plus a list of row tuples.

:class:`Relation` is the unit of data everywhere in the library — local
warehouse tables, GMDJ base-values relations, shipped sub-results and
final query answers are all relations.

Relations are *multisets* of rows (duplicates allowed) unless explicitly
deduplicated with :meth:`Relation.distinct`. Rows are plain tuples in
schema order. The class is deliberately a simple row store: the engine's
performance story lives in hash-based GMDJ evaluation, not storage.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import SchemaError
from repro.relalg import compiler, engine
from repro.relalg.columnar import ColumnarRelation
from repro.relalg.expressions import Expr
from repro.relalg.schema import Attribute, Schema, infer_type


class Relation:
    """An immutable-by-convention multiset of rows with a fixed schema."""

    __slots__ = ("schema", "rows", "_columnar")

    def __init__(self, schema: Schema, rows: Iterable[tuple] = (), validate: bool = False):
        if not isinstance(schema, Schema):
            raise SchemaError(f"expected Schema, got {schema!r}")
        self.schema = schema
        self.rows = [tuple(row) for row in rows]
        self._columnar = None
        if validate:
            for row in self.rows:
                schema.check_row(row)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[dict]) -> "Relation":
        """Build a relation from dict records; missing keys become ``None``."""
        names = schema.names
        return cls(schema, (tuple(record.get(name) for name in names) for record in records))

    @classmethod
    def infer(cls, records: Sequence[dict], names: Optional[Sequence[str]] = None) -> "Relation":
        """Build a relation from dict records, inferring the schema.

        Types are inferred from the first non-``None`` value of each
        attribute; attributes that are ``None`` everywhere default to FLOAT.
        """
        if names is None:
            if not records:
                raise SchemaError("cannot infer schema from zero records without names")
            names = list(records[0].keys())
        attributes = []
        for name in names:
            type_name = "float"
            for record in records:
                value = record.get(name)
                if value is not None:
                    type_name = infer_type(value)
                    break
            attributes.append(Attribute(name, type_name))
        return cls.from_dicts(Schema(attributes), records)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, ())

    @classmethod
    def from_columnar(cls, columnar: ColumnarRelation) -> "Relation":
        """Rehydrate a row relation from columns, seeding the column cache."""
        relation = cls(columnar.schema, columnar.to_rows())
        relation._columnar = columnar
        return relation

    def to_columnar(self) -> ColumnarRelation:
        """Columnar view of this relation (cached; relations are immutable)."""
        columnar = self._columnar
        if columnar is None:
            columnar = ColumnarRelation.from_rows(self.schema, self.rows)
            self._columnar = columnar
        return columnar

    # -- basics ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, {len(self.rows)} rows)"

    def to_dicts(self) -> list:
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    def column(self, name: str) -> list:
        """All values of one attribute, in row order."""
        position = self.schema.position(name)
        return [row[position] for row in self.rows]

    def row_dict(self, index: int) -> dict:
        return dict(zip(self.schema.names, self.rows[index]))

    # -- core relational operators ----------------------------------------------
    #
    # Join/rename/etc. live in repro.relalg.operators; the operators used in
    # inner loops of GMDJ evaluation are defined here as methods for
    # convenience and speed.

    def select(self, condition: Expr) -> "Relation":
        """Rows satisfying ``condition`` (fields unqualified)."""
        if engine.active_engine() == "columnar":
            mask = compiler.compile_mask(condition, {None: self.schema}, (None,), None)
            indices = mask(len(self.rows), self.to_columnar().value_lists())
            rows = self.rows
            return Relation(self.schema, (rows[index] for index in indices))
        predicate = compiler.compile_predicate(condition, {None: self.schema}, (None,))
        return Relation(self.schema, (row for row in self.rows if predicate(row)))

    def select_fn(self, predicate: Callable) -> "Relation":
        """Rows for which ``predicate(row_tuple)`` is truthy."""
        return Relation(self.schema, (row for row in self.rows if predicate(row)))

    def project(self, names: Sequence[str]) -> "Relation":
        """Projection (multiset — does not deduplicate, per SQL)."""
        positions = self.schema.positions(names)
        return Relation(
            self.schema.project(names),
            (tuple(row[position] for position in positions) for row in self.rows),
        )

    def distinct(self) -> "Relation":
        """Duplicate elimination, preserving first-seen row order."""
        seen = set()
        unique = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Relation(self.schema, unique)

    def distinct_project(self, names: Sequence[str]) -> "Relation":
        """``distinct(project(names))`` in one pass."""
        positions = self.schema.positions(names)
        seen = set()
        unique = []
        for row in self.rows:
            projected = tuple(row[position] for position in positions)
            if projected not in seen:
                seen.add(projected)
                unique.append(projected)
        return Relation(self.schema.project(names), unique)

    def union_all(self, other: "Relation") -> "Relation":
        """Multiset union; schemas must be identical."""
        if self.schema != other.schema:
            raise SchemaError(
                f"union over incompatible schemas: {self.schema!r} vs {other.schema!r}"
            )
        return Relation(self.schema, self.rows + other.rows)

    def extend(self, name: str, type_name: str, expression: Expr) -> "Relation":
        """Append a computed column (fields of ``expression`` unqualified)."""
        schema = self.schema.concat(Schema([Attribute(name, type_name)]))
        if engine.active_engine() == "columnar":
            batch = compiler.compile_batch_scalar(
                expression, {None: self.schema}, (None,), None
            )
            values = batch(len(self.rows), self.to_columnar().value_lists())
            return Relation(
                schema, (row + (value,) for row, value in zip(self.rows, values))
            )
        func = compiler.compile_scalar(expression, {None: self.schema}, (None,))
        return Relation(schema, (row + (func(row),) for row in self.rows))

    def rename(self, mapping: dict) -> "Relation":
        return Relation(self.schema.rename(mapping), self.rows)

    def sorted_by(self, names: Sequence[str], descending: bool = False) -> "Relation":
        """Rows ordered by the given attributes (``None`` sorts first)."""
        positions = self.schema.positions(names)

        def sort_key(row):
            return tuple(
                (row[position] is not None, row[position]) for position in positions
            )

        return Relation(self.schema, sorted(self.rows, key=sort_key, reverse=descending))

    def limit(self, count: int) -> "Relation":
        return Relation(self.schema, self.rows[:count])

    # -- comparison helpers (tests, synchronization checks) ----------------------

    def row_multiset(self) -> Counter:
        return Counter(self.rows)

    def same_rows(self, other: "Relation") -> bool:
        """Multiset equality of rows, requiring identical schemas."""
        return self.schema == other.schema and self.row_multiset() == other.row_multiset()

    def same_rows_any_order_of_columns(self, other: "Relation") -> bool:
        """Multiset equality after aligning ``other``'s columns to ours."""
        if set(self.schema.names) != set(other.schema.names):
            return False
        aligned = other.project(self.schema.names)
        return self.row_multiset() == aligned.row_multiset()

    # -- display -----------------------------------------------------------------

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width textual table for logs and examples."""
        names = [str(name) for name in self.schema.names]
        shown = self.rows[:max_rows]
        cells = [[_format_cell(value) for value in row] for row in shown]
        widths = [len(name) for name in names]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = " | ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _format_cell(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
