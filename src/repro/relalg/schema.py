"""Relation schemas and the attribute type system.

A :class:`Schema` is an ordered sequence of :class:`Attribute` objects.
Attribute types are a small closed set sufficient for OLAP workloads:
integers, floats, strings, booleans and dates (stored as ordinal ints).
Every attribute is nullable; ``None`` is the SQL NULL analogue.

Schemas are immutable value objects: deriving a new schema (project,
rename, concat) always returns a fresh instance.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError, TypeMismatchError, UnknownAttributeError

#: Closed set of attribute type names.
INT = "int"
FLOAT = "float"
STR = "str"
BOOL = "bool"
DATE = "date"

ALL_TYPES = (INT, FLOAT, STR, BOOL, DATE)

_PYTHON_TYPES = {
    INT: (int,),
    FLOAT: (float, int),
    STR: (str,),
    BOOL: (bool,),
    DATE: (datetime.date,),
}


def infer_type(value) -> str:
    """Infer the attribute type name for a Python value.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if isinstance(value, datetime.date):
        return DATE
    raise TypeMismatchError(f"cannot infer attribute type for {value!r}")


def check_value(value, type_name: str) -> None:
    """Raise :class:`TypeMismatchError` unless ``value`` fits ``type_name``.

    ``None`` fits every type (all attributes are nullable).
    """
    if value is None:
        return
    if type_name not in _PYTHON_TYPES:
        raise SchemaError(f"unknown attribute type {type_name!r}")
    if type_name == INT and isinstance(value, bool):
        raise TypeMismatchError(f"{value!r} is bool, expected {INT}")
    if not isinstance(value, _PYTHON_TYPES[type_name]):
        raise TypeMismatchError(f"{value!r} does not match type {type_name!r}")


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: str = FLOAT

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.type not in ALL_TYPES:
            raise SchemaError(f"unknown attribute type {self.type!r} for {self.name!r}")

    def renamed(self, new_name: str) -> "Attribute":
        return Attribute(new_name, self.type)


class Schema:
    """An ordered, immutable collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index = {}
        for position, attribute in enumerate(attrs):
            if not isinstance(attribute, Attribute):
                raise SchemaError(f"expected Attribute, got {attribute!r}")
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            index[attribute.name] = position
        self._attributes = attrs
        self._index = index

    @classmethod
    def of(cls, *specs) -> "Schema":
        """Build a schema from ``("name", "type")`` pairs or plain names.

        Plain names default to FLOAT.

        >>> Schema.of(("a", INT), "b").names
        ('a', 'b')
        """
        attributes = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attributes.append(spec)
            elif isinstance(spec, str):
                attributes.append(Attribute(spec))
            else:
                name, type_name = spec
                attributes.append(Attribute(name, type_name))
        return cls(attributes)

    @property
    def attributes(self) -> tuple:
        return self._attributes

    @property
    def names(self) -> tuple:
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.type}" for a in self._attributes)
        return f"Schema({inner})"

    def position(self, name: str) -> int:
        """Return the column position of ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def positions(self, names: Sequence[str]) -> tuple:
        return tuple(self.position(name) for name in names)

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to ``names``."""
        return Schema(self[name] for name in names)

    def rename(self, mapping: dict) -> "Schema":
        """Schema with attributes renamed per ``mapping`` (old -> new)."""
        for old in mapping:
            if old not in self._index:
                raise UnknownAttributeError(old, self.names)
        return Schema(
            attribute.renamed(mapping.get(attribute.name, attribute.name))
            for attribute in self._attributes
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema with ``other``'s attributes appended.

        Raises :class:`SchemaError` on name clashes.
        """
        return Schema(self._attributes + other._attributes)

    def check_row(self, row: tuple) -> None:
        """Validate one row tuple against this schema."""
        if len(row) != len(self._attributes):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self._attributes)} attributes"
            )
        for value, attribute in zip(row, self._attributes):
            try:
                check_value(value, attribute.type)
            except TypeMismatchError as exc:
                raise TypeMismatchError(f"attribute {attribute.name!r}: {exc}") from None
