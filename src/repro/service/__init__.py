"""Concurrent query service with sub-aggregate result caching.

See :mod:`repro.service.service` for the front door
(:class:`QueryService`), :mod:`repro.service.signature` for the cache
key space, and :mod:`repro.service.cache` for the LRU + refresh-upgrade
machinery. DESIGN.md §6 documents the invalidation/upgrade rules.
"""

from repro.service.cache import CacheEntry, ResultCache
from repro.service.service import (
    FRESH,
    HIT,
    REFRESH,
    QueryResult,
    QueryService,
    canonical_order,
)
from repro.service.signature import PlanSignature

__all__ = [
    "CacheEntry",
    "FRESH",
    "HIT",
    "PlanSignature",
    "QueryResult",
    "QueryService",
    "REFRESH",
    "ResultCache",
    "canonical_order",
]
