"""Finalized-result cache with sub-aggregate refresh upgrades.

Entries hold the *finalized* relation (served verbatim on a hit — a hit
is bit-identical to the evaluation that produced it, trivially) plus,
when the query is refreshable, the standing
:class:`~repro.distributed.incremental.IncrementalView` whose
sub-aggregate state lets an append-only data change *upgrade* the entry
in place instead of invalidating it (Theorem 1 mergeability is what
makes this exact, not approximate).

The cache itself is a small LRU keyed by full
:class:`~repro.service.signature.PlanSignature`; a secondary index on
the data-independent ``plan_key`` finds upgrade candidates when the
exact lookup misses. All map operations take one lock; the (expensive)
refresh work happens outside it under a per-entry lock, so two queries
upgrading *different* entries proceed in parallel while two racing for
the *same* entry serialize — the loser re-checks and finds a plain hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.errors import ServiceError
from repro.service.signature import PlanSignature


class CacheEntry:
    """One cached result and the state needed to keep it fresh."""

    __slots__ = ("signature", "relation", "stats", "view", "expression", "hits", "lock")

    def __init__(self, signature: PlanSignature, relation, stats, view, expression):
        self.signature = signature
        self.relation = relation
        self.stats = stats
        #: IncrementalView retaining sub-aggregate state, or None when the
        #: query is not refreshable (chain / holistic / degraded run).
        self.view = view
        self.expression = expression
        self.hits = 0
        self.lock = threading.Lock()

    @property
    def refreshable(self) -> bool:
        return self.view is not None

    def upgrade(self, signature: PlanSignature, relation) -> None:
        """Move the entry forward to a new data version (caller holds lock)."""
        self.signature = signature
        self.relation = relation


class ResultCache:
    """LRU of finalized results keyed by canonical plan signature."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()  # signature -> CacheEntry
        self._by_plan: dict = {}  # plan_key -> signature (latest entry)

    def get(self, signature: PlanSignature) -> Optional[CacheEntry]:
        """Exact hit (and LRU touch), or None."""
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                return None
            self._entries.move_to_end(signature)
            entry.hits += 1
            return entry

    def upgrade_candidate(self, current: PlanSignature) -> Optional[CacheEntry]:
        """The plan's cached entry at an *older* data version, if any.

        Returns the entry whose signature shares ``current.plan_key``;
        the caller decides whether the version gaps are coverable. Not an
        LRU touch — only a successful hit or upgrade promotes the entry.
        """
        with self._lock:
            signature = self._by_plan.get(current.plan_key)
            if signature is None:
                return None
            return self._entries.get(signature)

    def put(self, entry: CacheEntry) -> None:
        with self._lock:
            stale = self._by_plan.get(entry.signature.plan_key)
            if stale is not None and stale != entry.signature:
                # One entry per plan: the older data version can never be
                # served again (appends are monotonic), drop it.
                self._entries.pop(stale, None)
            self._entries[entry.signature] = entry
            self._entries.move_to_end(entry.signature)
            self._by_plan[entry.signature.plan_key] = entry.signature
            while len(self._entries) > self.capacity:
                evicted_sig, evicted = self._entries.popitem(last=False)
                if self._by_plan.get(evicted_sig.plan_key) == evicted_sig:
                    del self._by_plan[evicted_sig.plan_key]

    def reindex(self, old: PlanSignature, entry: CacheEntry) -> None:
        """Re-key an entry after an in-place :meth:`CacheEntry.upgrade`."""
        with self._lock:
            if self._entries.get(old) is entry:
                del self._entries[old]
            self._entries[entry.signature] = entry
            self._entries.move_to_end(entry.signature)
            self._by_plan[entry.signature.plan_key] = entry.signature

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_plan.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
