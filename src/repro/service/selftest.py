"""Concurrency smoke test for the query service (``repro serve --self-test``).

Builds a small flows warehouse, fires a batch of mixed queries from
client threads through one :class:`~repro.service.QueryService`, and
checks three things end to end:

1. every concurrent answer equals the serial single-query reference,
   row for row;
2. the cache accounting reconciles: hits + misses + refreshes equals
   queries served, and the number of *evaluations actually run* equals
   the misses;
3. an append followed by re-queries upgrades cached entries through
   their sub-aggregate state (``refresh``), again matching a fresh
   evaluation exactly.

Exit status 0 = all checks passed. The CI service job runs this under
both the threads and serial engines.
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor

from repro.data.flows import FlowConfig, generate_flows, router_partitioner
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.evaluator import ExecutionConfig
from repro.service.service import HIT, REFRESH, QueryService

QUERIES = (
    "SELECT SourceAS, COUNT(*) AS cnt, SUM(NumPackets) AS packets "
    "FROM Flow GROUP BY SourceAS",
    "SELECT DestAS, COUNT(*) AS cnt, MAX(NumPackets) AS biggest "
    "FROM Flow GROUP BY DestAS",
)


def _build_cluster(sites: int, flow_count: int) -> tuple:
    config = FlowConfig(flow_count=flow_count, router_count=sites)
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned(
        "Flow", generate_flows(config), router_partitioner(config)
    )
    return cluster, config


def run_self_test(
    out=None,
    *,
    sites: int = 3,
    executor: str = "threads",
    clients: int = 8,
    flow_count: int = 400,
) -> int:
    out = out or sys.stdout
    cluster, flow_config = _build_cluster(sites, flow_count)
    service = QueryService(
        cluster,
        ExecutionConfig(executor=executor),
        max_in_flight=max(2, clients // 2),
        max_queue=clients * 2,
    )
    failures = []
    with service:
        # Serial reference answers, computed through the same service
        # (cold cache misses) before any concurrency.
        reference = {sql: service.submit(sql).relation for sql in QUERIES}
        baseline_misses = service.metrics.value_of("service.cache.miss")

        batch = [QUERIES[index % len(QUERIES)] for index in range(clients)]
        with ThreadPoolExecutor(max_workers=clients) as pool:
            results = list(pool.map(service.submit, batch))
        for sql, result in zip(batch, results):
            if result.relation.rows != reference[sql].rows:
                failures.append(f"concurrent answer diverged for: {sql}")
        hits = service.metrics.value_of("service.cache.hit")
        misses = service.metrics.value_of("service.cache.miss")
        if hits != clients:
            failures.append(f"expected {clients} cache hits, saw {hits}")
        if misses != baseline_misses:
            failures.append(
                f"concurrent batch should be all hits, saw "
                f"{misses - baseline_misses} extra miss(es)"
            )

        # Append a delta and re-query: entries must upgrade via refresh.
        delta_config = FlowConfig(
            flow_count=50, router_count=sites, seed=flow_config.seed + 1
        )
        delta_rows = generate_flows(delta_config)
        # Split with the same partitioner that loaded the warehouse, so
        # appended rows respect the catalog's site predicates.
        per_site = dict(
            zip(cluster.site_ids, router_partitioner(delta_config).split(delta_rows))
        )
        service.append("Flow", per_site)
        for sql in QUERIES:
            upgraded = service.submit(sql)
            if upgraded.source != REFRESH:
                failures.append(
                    f"expected refresh upgrade after append, got "
                    f"{upgraded.source!r} for: {sql}"
                )
        fresh_cluster, _ = _build_cluster(sites, flow_count)
        for site_id, delta in per_site.items():
            fresh_cluster.site(site_id).warehouse.append("Flow", delta)
        with QueryService(
            fresh_cluster, ExecutionConfig(executor="serial")
        ) as fresh_service:
            for sql in QUERIES:
                expected = fresh_service.submit(sql).relation
                upgraded = service.submit(sql)  # now a pure hit
                if upgraded.source != HIT:
                    failures.append(
                        f"expected hit after upgrade, got {upgraded.source!r}"
                    )
                if upgraded.relation.rows != expected.rows:
                    failures.append(f"refreshed answer diverged for: {sql}")

        refreshes = service.metrics.value_of("service.cache.refresh")
        queries = service.metrics.value_of("service.queries")
        total_hits = service.metrics.value_of("service.cache.hit")
        total_misses = service.metrics.value_of("service.cache.miss")
        if total_hits + total_misses + refreshes != queries:
            failures.append(
                f"cache accounting does not reconcile: {total_hits} hits + "
                f"{total_misses} misses + {refreshes} refreshes != "
                f"{queries} queries"
            )

        print(
            f"self-test [{executor}] sites={sites} clients={clients}: "
            f"queries={int(queries)} hits={int(total_hits)} "
            f"misses={int(total_misses)} refreshes={int(refreshes)}",
            file=out,
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=out)
        return 1
    print("self-test passed", file=out)
    return 0
