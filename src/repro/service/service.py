"""Concurrent query service over a simulated Skalla cluster.

:class:`QueryService` is the front door a warehouse deployment would
expose: many clients submit GMDJ expressions (or OLAP SQL text)
concurrently, and the service

- **admits** them through a bounded gate — at most ``max_in_flight``
  queries execute at once, at most ``max_queue`` wait in FIFO order, and
  a waiter that outlives its admission timeout is failed with
  :class:`~repro.errors.QueryTimeoutError` rather than left hanging;
- **caches** finalized results keyed by canonical
  :class:`~repro.service.signature.PlanSignature`, retaining each
  refreshable query's sub-aggregate state so an append-only data change
  *upgrades* the entry through
  :meth:`~repro.distributed.incremental.IncrementalView.refresh` instead
  of discarding it;
- **shares** one :class:`ExecutionConfig`-selected engine (serial /
  threads / processes) across all queries, while giving every executing
  query its own private channel set
  (:meth:`~repro.distributed.cluster.SimulatedCluster.fresh_network`) —
  channels are plain queues, so two queries interleaving on one channel
  would consume each other's fragments.

Appends go through :meth:`QueryService.append`, which is
writer-exclusive (it waits for in-flight queries to drain, so a query
never sees a torn multi-site append) and logs every per-site delta by
the warehouse version it produced; those logs are what make cache
upgrades possible.

Determinism contract: all served relations are in **canonical row
order** (sorted by the expression's key attributes, ``repr``-wise). A
cache hit returns the stored relation verbatim, and a refresh-upgraded
result is value-identical to evaluating fresh against the grown data —
both are checked bit-for-bit in the test suite.

Query-lifecycle observability: every submission is decomposed into the
stage sequence ``admission → lookup → plan → execute → merge``, each
stage recorded as a ``service.<stage>`` span under the ``service.query``
root and observed into the ``service.stage_s{stage=...}`` histogram
family. Stage durations are measured on one monotonic clock
(``time.perf_counter``, the same clock the tracer uses) so they are
*additive*: their sum accounts for the submission's end-to-end
``wall_s`` up to constant-time glue (the load harness asserts >= 95%).
End-to-end latency is additionally observed per outcome
(``service.latency_by_outcome_s{outcome=hit|fresh|refresh|degraded|
rejected|timeout}``) so SLOs can be stated per serving path.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.evaluator import ExecutionConfig, execute_plan
from repro.distributed.executor import create_engine
from repro.distributed.incremental import IncrementalView
from repro.distributed.optimizer import OptimizationOptions, plan_query
from repro.errors import (
    AdmissionError,
    PlanError,
    QueryTimeoutError,
    ServiceError,
)
from repro.gmdj.expression import GMDJExpression
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.queries.sql import parse_olap_statement
from repro.relalg.relation import Relation
from repro.service.cache import CacheEntry, ResultCache
from repro.service.signature import PlanSignature

#: ``QueryResult.source`` values.
FRESH = "fresh"
HIT = "hit"
REFRESH = "refresh"

#: Additional ``QueryResult.outcome`` values (a fresh evaluation is the
#: cache-miss path, so ``"fresh"`` doubles as the miss outcome).
DEGRADED = "degraded"
REJECTED = "rejected"
TIMEOUT = "timeout"

#: Query-lifecycle stages, in submission order.
STAGES = ("admission", "lookup", "plan", "execute", "merge")

#: Every outcome a submission can end with.
OUTCOMES = (HIT, FRESH, REFRESH, DEGRADED, REJECTED, TIMEOUT)


def canonical_order(relation: Relation, key_attrs) -> Relation:
    """Rows sorted by the key attributes (``repr``-wise, total order).

    The service serves every result in this order so that a fresh
    evaluation, a cache hit, and a refresh-upgraded result of the same
    query are comparable row-for-row — distributed evaluation and
    incremental refresh build their output rows in different (both
    correct) orders.
    """
    positions = relation.schema.positions(list(key_attrs))
    return Relation(
        relation.schema,
        sorted(
            relation.rows,
            key=lambda row: tuple(repr(row[position]) for position in positions),
        ),
    )


@dataclass
class QueryResult:
    """What one submitted query got back."""

    query_id: int
    relation: Relation
    #: ``"fresh"`` (evaluated), ``"hit"`` (served from cache verbatim),
    #: or ``"refresh"`` (cache entry upgraded via its sub-aggregate state).
    source: str
    signature: PlanSignature
    #: ExecutionStats of the run that produced/upgraded the relation;
    #: a pure hit carries the stats of the original evaluation.
    stats: object
    wall_s: float
    #: The SLO outcome: ``source``, or ``"degraded"`` when a fresh
    #: evaluation excluded sites (rejected/timeout submissions raise).
    outcome: str = FRESH
    #: Per-stage seconds (admission/lookup/plan/execute/merge); the sum
    #: accounts for ``wall_s`` up to constant-time glue.
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def from_cache(self) -> bool:
        return self.source != FRESH

    @property
    def stage_total_s(self) -> float:
        return sum(self.stages.values())


@dataclass
class _Served:
    relation: Relation
    source: str
    stats: object
    signature: PlanSignature


class QueryService:
    """Admission-controlled, cache-fronted concurrent query endpoint."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: Optional[ExecutionConfig] = None,
        options: Optional[OptimizationOptions] = None,
        *,
        max_in_flight: int = 4,
        max_queue: int = 16,
        admission_timeout_s: float = 30.0,
        cache_capacity: int = 64,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_in_flight < 1:
            raise ServiceError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_queue < 0:
            raise ServiceError(f"max_queue must be >= 0, got {max_queue}")
        if admission_timeout_s <= 0:
            raise ServiceError(
                f"admission_timeout_s must be > 0, got {admission_timeout_s}"
            )
        self.cluster = cluster
        self.config = config or ExecutionConfig()
        self.options = options
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.admission_timeout_s = admission_timeout_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = ResultCache(cache_capacity)
        #: (table, site) -> {version: delta relation} — every append this
        #: service applied, addressable by the version it produced.
        self._delta_log: dict = {}
        self._gate = threading.Condition()
        self._queue: deque = deque()  # waiting tickets, FIFO
        self._in_flight = 0
        self._writer_active = False
        self._closed = False
        self._query_ids = itertools.count(1)
        # Pre-register the service's metric families so a /metrics scrape
        # (repro serve --metrics-port) exposes zeros before any traffic.
        self.metrics.gauge("service.queue.depth")
        self.metrics.gauge("service.in_flight")
        for counter_name in (
            "service.queries",
            "service.cache.hit",
            "service.cache.miss",
            "service.cache.refresh",
            "service.cache.uncacheable",
            "service.admission.rejected",
            "service.admission.timeout",
            "service.appends",
        ):
            self.metrics.counter(counter_name)
        self.metrics.histogram("service.latency_s")
        for stage in STAGES:
            self.metrics.histogram("service.stage_s", stage=stage)
        for outcome in OUTCOMES:
            self.metrics.histogram("service.latency_by_outcome_s", outcome=outcome)
        self._engine = create_engine(
            self.config.executor, cluster.sites, self.tracer, self.config.max_workers
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Refuse new work, fail waiters, release the engine. Idempotent."""
        with self._gate:
            if self._closed:
                return
            self._closed = True
            self._gate.notify_all()
        self._engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission ---------------------------------------------------------------

    def _update_gate_gauges(self) -> None:
        # Caller holds self._gate.
        self.metrics.gauge("service.queue.depth").set(len(self._queue))
        self.metrics.gauge("service.in_flight").set(self._in_flight)

    def _admittable(self, ticket) -> bool:
        # Caller holds self._gate.
        return (
            self._queue
            and self._queue[0] is ticket
            and self._in_flight < self.max_in_flight
            and not self._writer_active
        )

    def _acquire_slot(self, timeout_s: float) -> None:
        # One monotonic clock (perf_counter) for the whole query
        # lifecycle, so the admission stage is additive with the
        # execution stages measured by submit() and the tracer.
        entered = time.perf_counter()
        deadline = entered + timeout_s
        with self._gate:
            if self._closed:
                raise ServiceError("query service is closed")
            if (
                not self._queue
                and self._in_flight < self.max_in_flight
                and not self._writer_active
            ):
                # Fast path: nobody waiting, a slot is free — skip the queue.
                self._in_flight += 1
                self._update_gate_gauges()
                return
            if len(self._queue) >= self.max_queue:
                self.metrics.counter("service.admission.rejected").inc()
                raise AdmissionError(len(self._queue), self.max_queue)
            ticket = object()
            self._queue.append(ticket)
            self._update_gate_gauges()
            try:
                while not self._admittable(ticket):
                    if self._closed:
                        raise ServiceError("query service is closed")
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        self.metrics.counter("service.admission.timeout").inc()
                        raise QueryTimeoutError(
                            time.perf_counter() - entered, timeout_s
                        )
                    self._gate.wait(remaining)
                self._queue.popleft()
                self._in_flight += 1
                self._update_gate_gauges()
                # The next waiter may also be admittable (slots > 1).
                self._gate.notify_all()
            except BaseException:
                if ticket in self._queue:
                    self._queue.remove(ticket)
                    self._update_gate_gauges()
                self._gate.notify_all()
                raise

    def _release_slot(self) -> None:
        with self._gate:
            self._in_flight -= 1
            self._update_gate_gauges()
            self._gate.notify_all()

    # -- queries ------------------------------------------------------------------

    @contextmanager
    def _stage(self, name: str, stages: Dict[str, float]):
        """Time one lifecycle stage: span + histogram + ``stages`` entry.

        Re-entering the same stage name accumulates (the merge stage runs
        once in ``_serve`` and again for post clauses in ``submit``).
        """
        with self.tracer.span(f"service.{name}", kind="service", stage=name):
            started = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - started
                stages[name] = stages.get(name, 0.0) + elapsed
                self.metrics.histogram("service.stage_s", stage=name).observe(
                    elapsed
                )

    def _observe_outcome(self, outcome: str, wall_s: float) -> None:
        self.metrics.histogram(
            "service.latency_by_outcome_s", outcome=outcome
        ).observe(wall_s)

    def submit(
        self,
        query: Union[str, GMDJExpression],
        *,
        timeout_s: Optional[float] = None,
    ) -> QueryResult:
        """Run one query (GMDJ expression or OLAP SQL text), blocking.

        Thread-safe: any number of client threads may call this
        concurrently; the admission gate bounds actual parallelism.
        """
        if isinstance(query, str):
            statement = parse_olap_statement(query)
            expression = statement.expression
            post = statement.apply_post
        elif isinstance(query, GMDJExpression):
            expression = query
            post = None
        else:
            raise ServiceError(
                f"expected SQL text or GMDJExpression, got {type(query).__name__}"
            )
        query_id = next(self._query_ids)
        started = time.perf_counter()
        stages: Dict[str, float] = {}
        with self.tracer.span(
            "service.query", kind="service", query_id=query_id
        ) as span:
            try:
                with self._stage("admission", stages):
                    self._acquire_slot(
                        timeout_s if timeout_s is not None
                        else self.admission_timeout_s
                    )
            except (AdmissionError, QueryTimeoutError) as error:
                outcome = (
                    REJECTED if isinstance(error, AdmissionError) else TIMEOUT
                )
                span.set(outcome=outcome)
                self._observe_outcome(outcome, time.perf_counter() - started)
                raise
            try:
                self.metrics.counter("service.queries").inc()
                served = self._serve(expression, span, query_id, stages)
                if post is None:
                    relation = served.relation
                else:
                    with self._stage("merge", stages):
                        relation = post(served.relation)
                outcome = served.source
                if outcome == FRESH and getattr(served.stats, "degraded", False):
                    outcome = DEGRADED
                span.set(outcome=outcome)
                wall_s = time.perf_counter() - started
                self.metrics.histogram("service.latency_s").observe(wall_s)
                self._observe_outcome(outcome, wall_s)
                return QueryResult(
                    query_id=query_id,
                    relation=relation,
                    source=served.source,
                    signature=served.signature,
                    stats=served.stats,
                    wall_s=wall_s,
                    outcome=outcome,
                    stages=dict(stages),
                )
            finally:
                self._release_slot()

    def _serve(
        self, expression: GMDJExpression, span, query_id=None, stages=None
    ) -> _Served:
        stages = {} if stages is None else stages
        with self._stage("lookup", stages):
            signature = PlanSignature.compute(self.cluster, expression)
            entry = self.cache.get(signature)
            candidate = None
            if entry is None:
                candidate = self.cache.upgrade_candidate(signature)
        if entry is not None:
            self.metrics.counter("service.cache.hit").inc()
            return _Served(entry.relation, HIT, entry.stats, signature)
        if candidate is not None and candidate.refreshable:
            served = self._try_upgrade(candidate, signature, span, stages)
            if served is not None:
                return served
        self.metrics.counter("service.cache.miss").inc()
        with self._stage("plan", stages):
            plan = plan_query(expression, self.cluster.catalog, self.options)
        with self._stage("execute", stages):
            result = execute_plan(
                self.cluster,
                plan,
                self.config,
                tracer=self.tracer,
                engine=self._engine,
                network=self.cluster.fresh_network(self.metrics),
                query_id=query_id,
            )
        with self._stage("merge", stages):
            relation = canonical_order(result.relation, expression.key)
            self._maybe_cache(expression, signature, relation, result.stats)
        return _Served(relation, FRESH, result.stats, signature)

    def _try_upgrade(
        self, entry: CacheEntry, signature: PlanSignature, span, stages
    ) -> Optional[_Served]:
        with entry.lock:
            if entry.signature == signature:
                # Lost the race: another query upgraded the entry first.
                self.metrics.counter("service.cache.hit").inc()
                return _Served(entry.relation, HIT, entry.stats, signature)
            gaps = entry.signature.version_gaps(signature)
            if not gaps:
                return None
            deltas = self._coverable_deltas(entry, gaps)
            if deltas is None:
                return None
            old_signature = entry.signature
            with self._stage("execute", stages):
                refreshed = entry.view.refresh(
                    deltas,
                    apply_appends=False,
                    network=self.cluster.fresh_network(self.metrics),
                )
            with self._stage("merge", stages):
                relation = canonical_order(
                    refreshed.relation, entry.expression.key
                )
                entry.upgrade(signature, relation)
                self.cache.reindex(old_signature, entry)
        self.metrics.counter("service.cache.refresh").inc()
        span.set(new_groups=refreshed.new_groups)
        return _Served(relation, REFRESH, refreshed.stats, signature)

    def _coverable_deltas(self, entry: CacheEntry, gaps) -> Optional[dict]:
        """Per-site combined deltas spanning the gaps, or None if uncovered.

        Coverage is strict: every version in every gap must be in the
        delta log (a register/drop, or an append that bypassed the
        service, leaves a hole → plain miss), and only the view's detail
        table can move (a changed base table is not refreshable).
        """
        detail = entry.view.step.detail
        per_site = {}
        for table, site_id, old_version, new_version in gaps:
            if table != detail:
                return None
            log = self._delta_log.get((table, site_id))
            if log is None:
                return None
            combined = None
            for version in range(old_version + 1, new_version + 1):
                delta = log.get(version)
                if delta is None:
                    return None
                combined = delta if combined is None else combined.union_all(delta)
            per_site[site_id] = combined
        return per_site

    def _maybe_cache(self, expression, signature, relation, stats) -> None:
        if stats.degraded:
            # An under-approximation must never be served as an answer to
            # a later identical query, and Incremental refusal aside, its
            # sub-aggregates are missing the excluded sites' tuples.
            self.metrics.counter("service.cache.uncacheable").inc()
            return
        try:
            view = IncrementalView(self.cluster, expression, source_stats=stats)
        except PlanError:
            view = None  # chain / holistic / unsupported base: hit-only entry
        self.cache.put(CacheEntry(signature, relation, stats, view, expression))

    # -- appends -----------------------------------------------------------------

    def append(self, table_name: str, deltas: Mapping[str, Relation]) -> dict:
        """Apply per-site appends writer-exclusively and log the deltas.

        Waits until no query is in flight (a query must never observe
        site A post-append and site B pre-append), applies every delta,
        and records each under the warehouse version it produced so
        cached entries can be refresh-upgraded later. Returns
        ``{site_id: new_version}``.
        """
        with self._gate:
            if self._closed:
                raise ServiceError("query service is closed")
            while self._writer_active or self._in_flight > 0:
                self._gate.wait()
                if self._closed:
                    raise ServiceError("query service is closed")
            self._writer_active = True
        try:
            versions = {}
            for site_id, delta in deltas.items():
                warehouse = self.cluster.site(site_id).warehouse
                warehouse.append(table_name, delta)
                version = warehouse.version(table_name)
                self._delta_log.setdefault((table_name, site_id), {})[version] = delta
                versions[site_id] = version
            self.metrics.counter("service.appends").inc()
            return versions
        finally:
            with self._gate:
                self._writer_active = False
                self._gate.notify_all()
