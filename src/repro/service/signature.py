"""Canonical plan signatures: the result cache's key space.

A cached result may be served only while three things are unchanged:

1. **what** is asked — the expression's *canonical* fingerprint
   (:meth:`~repro.gmdj.expression.GMDJExpression.fingerprint`), so two
   queries differing only commutatively (AND/OR operand order,
   comparison orientation) share one cache slot;
2. **how** it would be planned — the distribution catalog's fingerprint
   (:meth:`~repro.warehouse.catalog.DistributionCatalog.fingerprint`);
   a new FD or harvested value predicate can change the plan, so it must
   open a fresh slot;
3. **over which data** — the per-(table, site) warehouse versions of
   every table the expression reads.

The first two components match exactly or the entry is unrelated. The
data component is where the service earns its keep: when only the data
versions moved *forward* (append-only growth), the entry is a candidate
for a refresh *upgrade* via the retained sub-aggregate state instead of
a plain miss — :meth:`PlanSignature.version_gaps` computes exactly which
(table, site) pairs must be covered by logged deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gmdj.expression import GMDJExpression


@dataclass(frozen=True)
class PlanSignature:
    """Hashable identity of one (query, catalog, data) combination."""

    expression_fp: str
    catalog_fp: str
    #: ``((table, site, version), ...)`` — sorted by table, then cluster
    #: site order (see ``SimulatedCluster.data_versions``).
    data_versions: tuple

    @classmethod
    def compute(cls, cluster, expression: GMDJExpression) -> "PlanSignature":
        """The signature this query has against the cluster *right now*."""
        tables = set(expression.detail_tables())
        base_table = expression.base_source.table_name
        if base_table is not None:
            tables.add(base_table)
        return cls(
            expression_fp=expression.fingerprint(),
            catalog_fp=cluster.catalog.fingerprint(),
            data_versions=cluster.data_versions(sorted(tables)),
        )

    @property
    def plan_key(self) -> tuple:
        """The data-independent part: same query against same catalog."""
        return (self.expression_fp, self.catalog_fp)

    def version_gaps(self, current: "PlanSignature") -> Optional[tuple]:
        """Per-(table, site) version ranges separating ``self`` from ``current``.

        Returns ``((table, site, old_version, new_version), ...)`` for
        every pair whose version moved, or ``None`` when the two
        signatures are not upgrade-comparable: different plan key,
        different table/site coverage, or any version that moved
        *backwards* (a drop/re-register is never an append).
        """
        if self.plan_key != current.plan_key:
            return None
        if len(self.data_versions) != len(current.data_versions):
            return None
        gaps = []
        for old, new in zip(self.data_versions, current.data_versions):
            if old[:2] != new[:2]:
                return None
            old_version, new_version = old[2], new[2]
            if new_version < old_version:
                return None
            if new_version > old_version:
                gaps.append((old[0], old[1], old_version, new_version))
        return tuple(gaps)
