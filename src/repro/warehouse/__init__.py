"""``repro.warehouse`` — local storage and distribution knowledge.

:class:`~repro.warehouse.storage.LocalWarehouse` is the per-site table
store; :mod:`~repro.warehouse.partition` defines how a conceptual fact
relation is split across sites; and
:class:`~repro.warehouse.catalog.DistributionCatalog` records what the
coordinator knows about that split (site predicates φᵢ and partition
attributes), which is what the Skalla optimizer consumes.
"""

from repro.warehouse.catalog import DistributionCatalog, TableDistribution
from repro.warehouse.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    ValueListPartitioner,
)
from repro.warehouse.storage import LocalWarehouse

__all__ = [
    "DistributionCatalog",
    "HashPartitioner",
    "LocalWarehouse",
    "Partitioner",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "TableDistribution",
    "ValueListPartitioner",
]
