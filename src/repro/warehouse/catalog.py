"""Distribution catalog: what the coordinator knows about data placement.

The optimizations of Section 4 consume two kinds of distribution
knowledge, tracked separately because they have different strength:

- **site predicates** φᵢ — a predicate every detail row at site *i*
  satisfies (Theorem 4, distribution-aware group reduction). Available
  for value-list and range partitioning; *not* for hash partitioning.
- **partition attributes** — attributes whose per-site value sets are
  disjoint (Definition 2; Corollary 1, synchronization reduction).
  Available whenever rows are placed by any deterministic function of the
  attribute, including hashing.

A catalog may also record *functional dependencies* between attributes:
if A is a partition attribute and B functionally determines A, then B is
a partition attribute too (the paper's "NationKey and therefore also
CustKey" remark in Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.errors import CatalogError
from repro.relalg.expressions import Expr
from repro.warehouse.partition import Partitioner


@dataclass
class TableDistribution:
    """Distribution facts for one conceptual table."""

    site_ids: tuple
    phi_by_site: dict = field(default_factory=dict)
    partition_attrs: tuple = ()
    #: True when every listed site holds a FULL copy (dimension tables).
    replicated: bool = False

    def phi(self, site_id: str) -> Optional[Expr]:
        return self.phi_by_site.get(site_id)


class DistributionCatalog:
    """Per-table distribution knowledge, keyed by conceptual table name."""

    def __init__(self):
        self._tables: dict = {}
        #: determinant -> frozenset of attributes it functionally determines
        self._fds: dict = {}

    # -- registration --------------------------------------------------------

    def register(
        self,
        table_name: str,
        site_ids: Sequence[str],
        phi_by_site: Optional[Mapping[str, Expr]] = None,
        partition_attrs: Sequence[str] = (),
        replicated: bool = False,
    ) -> None:
        site_ids = tuple(site_ids)
        if not site_ids:
            raise CatalogError(f"table {table_name!r} registered with no sites")
        phi_by_site = dict(phi_by_site or {})
        unknown = set(phi_by_site) - set(site_ids)
        if unknown:
            raise CatalogError(
                f"phi predicates for unregistered sites {sorted(unknown)}"
            )
        if replicated and (phi_by_site or partition_attrs):
            raise CatalogError(
                "a replicated table has no site predicates or partition "
                "attributes: every site holds everything"
            )
        self._tables[table_name] = TableDistribution(
            site_ids, phi_by_site, tuple(partition_attrs), replicated
        )

    def register_partitioner(
        self,
        table_name: str,
        partitioner: Partitioner,
        site_ids: Sequence[str],
        schema,
    ) -> None:
        """Derive and register distribution facts from a partitioner."""
        site_ids = tuple(site_ids)
        if len(site_ids) != partitioner.site_count:
            raise CatalogError(
                f"partitioner covers {partitioner.site_count} sites, "
                f"{len(site_ids)} site ids given"
            )
        phi_by_site = {}
        for index, site_id in enumerate(site_ids):
            predicate = partitioner.site_predicate(index, schema)
            if predicate is not None:
                phi_by_site[site_id] = predicate
        self.register(
            table_name,
            site_ids,
            phi_by_site,
            partitioner.partition_attributes(),
        )

    def add_functional_dependency(self, determinant: str, determined: str) -> None:
        """Record ``determinant -> determined`` (e.g. CustKey -> NationKey)."""
        self._fds.setdefault(determinant, set()).add(determined)

    # -- lookups ------------------------------------------------------------------

    def is_registered(self, table_name: str) -> bool:
        return table_name in self._tables

    def fingerprint(self) -> str:
        """Stable digest of everything planning-relevant in the catalog.

        Two catalogs with the same fingerprint plan any query
        identically: registered tables with their site lists, site
        predicates φᵢ (by repr — expression reprs are deterministic),
        partition attributes, replication flags, and functional
        dependencies all participate. The query service includes this in
        every cached plan signature so any catalog change — a new FD,
        harvested value predicates, a re-registered table — invalidates
        exactly the results whose plans could now differ.
        """
        import hashlib

        pieces = []
        for table_name in sorted(self._tables):
            distribution = self._tables[table_name]
            phis = ",".join(
                f"{site_id}:{distribution.phi_by_site[site_id]!r}"
                for site_id in sorted(distribution.phi_by_site)
            )
            pieces.append(
                f"table={table_name};sites={','.join(distribution.site_ids)};"
                f"attrs={','.join(distribution.partition_attrs)};"
                f"replicated={distribution.replicated};phi=[{phis}]"
            )
        for determinant in sorted(self._fds):
            determined = ",".join(sorted(self._fds[determinant]))
            pieces.append(f"fd={determinant}->{determined}")
        return hashlib.sha256("\n".join(pieces).encode("utf-8")).hexdigest()

    def _distribution(self, table_name: str) -> TableDistribution:
        try:
            return self._tables[table_name]
        except KeyError:
            raise CatalogError(f"no distribution registered for {table_name!r}") from None

    def sites(self, table_name: str) -> tuple:
        return self._distribution(table_name).site_ids

    def phi(self, table_name: str, site_id: str) -> Optional[Expr]:
        """Site predicate φᵢ, or ``None`` when unknown."""
        return self._distribution(table_name).phi(site_id)

    def partition_attributes(self, table_name: str) -> tuple:
        """All partition attributes, including FD-derived ones.

        If A is a partition attribute and some attribute B functionally
        determines A, rows sharing a B value share an A value and hence a
        site, so B's per-site value sets are disjoint too.
        """
        direct = self._distribution(table_name).partition_attrs
        derived = [
            determinant
            for determinant, determined in self._fds.items()
            if any(attr in determined for attr in direct)
        ]
        return tuple(dict.fromkeys((*direct, *derived)))

    def is_partition_attribute(self, table_name: str, attribute: str) -> bool:
        return attribute in self.partition_attributes(table_name)

    def has_site_predicates(self, table_name: str) -> bool:
        return bool(self._distribution(table_name).phi_by_site)

    def is_replicated(self, table_name: str) -> bool:
        return self._distribution(table_name).replicated

    # -- distribution knowledge harvesting ------------------------------------------

    def harvest_value_predicates(
        self,
        table_name: str,
        attributes: Sequence[str],
        partitions: Mapping[str, object],
        max_values: int = 10_000,
    ) -> int:
        """Derive φᵢ from the *observed* per-site value sets of attributes.

        Section 4.1's closing observation: an attribute need not be a
        partition attribute for Theorem 4 to help — "any given value of
        SourceAS might occur in the Flow relation at only a few sites.
        Even in such cases, we would be able to further reduce the number
        of groups sent to the sites." This method scans each site's
        partition once, records the distinct values of the given
        attributes, and strengthens each site's φᵢ with
        ``attr IN (observed values)`` — sound because a site trivially
        satisfies a predicate enumerating its own values, regardless of
        overlaps between sites.

        ``partitions`` maps site ids to the site's local relation.
        Attributes whose per-site value count exceeds ``max_values`` are
        skipped (an enormous IN-list would cost more than it saves).
        Returns the number of (site, attribute) predicates added.
        """
        from repro.relalg.expressions import Field, DETAIL_VAR, and_all

        distribution = self._distribution(table_name)
        added = 0
        for site_id in distribution.site_ids:
            relation = partitions.get(site_id)
            if relation is None:
                continue
            conjuncts = []
            for attribute in attributes:
                values = set(relation.column(attribute))
                values.discard(None)
                if not values or len(values) > max_values:
                    continue
                conjuncts.append(Field(attribute, DETAIL_VAR).is_in(values))
                added += 1
            if not conjuncts:
                continue
            existing = distribution.phi_by_site.get(site_id)
            harvested = and_all(conjuncts)
            if existing is None:
                distribution.phi_by_site[site_id] = harvested
            else:
                distribution.phi_by_site[site_id] = existing & harvested
        return added
