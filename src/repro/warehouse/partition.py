"""Partitioners: how a conceptual fact relation is split across sites.

In the paper, data is partitioned by collection point (RouterId for
flows, NationKey for the TPC-R experiments). A :class:`Partitioner`
assigns each detail row to a site and — when possible — *describes* the
distribution so the catalog can exploit it:

- :meth:`Partitioner.site_predicate` returns φᵢ, a predicate every row at
  site *i* satisfies (Theorem 4's hypothesis), or ``None`` when the
  assignment is not expressible as a simple predicate;
- :meth:`Partitioner.partition_attributes` returns attributes satisfying
  Definition 2 (value sets disjoint across sites), which is all Corollary
  1 needs — note a hash partitioner has a partition attribute but no
  analyzable φᵢ.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import WarehouseError
from repro.relalg.expressions import Expr, Field, DETAIL_VAR
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema


class Partitioner:
    """Assigns rows of a relation to ``site_count`` sites."""

    def __init__(self, site_count: int):
        if site_count < 1:
            raise WarehouseError(f"need at least one site, got {site_count}")
        self.site_count = site_count

    def assign(self, row: tuple, schema: Schema) -> int:
        """Site index in ``range(site_count)`` for one row."""
        raise NotImplementedError

    def site_predicate(self, site_index: int, schema: Schema) -> Optional[Expr]:
        """φᵢ over detail fields, or ``None`` when not expressible."""
        return None

    def partition_attributes(self) -> tuple:
        """Attributes with disjoint per-site value sets (Definition 2)."""
        return ()

    def split(self, relation: Relation) -> list:
        """Partition a relation into ``site_count`` relations."""
        buckets = [[] for _index in range(self.site_count)]
        schema = relation.schema
        for row in relation.rows:
            index = self.assign(row, schema)
            if not 0 <= index < self.site_count:
                raise WarehouseError(
                    f"partitioner assigned site {index}, valid range is "
                    f"0..{self.site_count - 1}"
                )
            buckets[index].append(row)
        return [Relation(schema, bucket) for bucket in buckets]


class ValueListPartitioner(Partitioner):
    """Explicit value -> site mapping on one attribute.

    This is the paper's NationKey partitioning: each attribute value is
    pinned to one site, and φᵢ is ``attr IN (values at site i)``.
    """

    def __init__(self, attribute: str, assignment: dict, site_count: int):
        super().__init__(site_count)
        self.attribute = attribute
        self.assignment = dict(assignment)
        for value, site in self.assignment.items():
            if not 0 <= site < site_count:
                raise WarehouseError(
                    f"value {value!r} assigned to invalid site {site}"
                )

    @classmethod
    def spread(cls, attribute: str, values: Sequence, site_count: int) -> "ValueListPartitioner":
        """Deal values round-robin across sites (the paper's equal split)."""
        assignment = {value: index % site_count for index, value in enumerate(sorted(values))}
        return cls(attribute, assignment, site_count)

    def assign(self, row, schema):
        value = row[schema.position(self.attribute)]
        try:
            return self.assignment[value]
        except KeyError:
            raise WarehouseError(
                f"value {value!r} of {self.attribute!r} has no assigned site"
            ) from None

    def site_predicate(self, site_index, schema):
        values = frozenset(
            value for value, site in self.assignment.items() if site == site_index
        )
        return Field(self.attribute, DETAIL_VAR).is_in(values)

    def partition_attributes(self):
        return (self.attribute,)

    def values_at_site(self, site_index: int) -> frozenset:
        return frozenset(
            value for value, site in self.assignment.items() if site == site_index
        )


class RangePartitioner(Partitioner):
    """Contiguous ranges of one numeric attribute.

    ``boundaries`` are the inclusive upper bounds of all but the last
    site: with boundaries ``[25, 50]`` and 3 sites, site 0 holds values
    ``<= 25``, site 1 holds ``(25, 50]``, site 2 the rest.
    """

    def __init__(self, attribute: str, boundaries: Sequence, site_count: int):
        super().__init__(site_count)
        boundaries = list(boundaries)
        if len(boundaries) != site_count - 1:
            raise WarehouseError(
                f"{site_count} sites need {site_count - 1} boundaries, got {len(boundaries)}"
            )
        if boundaries != sorted(boundaries):
            raise WarehouseError("range boundaries must be sorted")
        self.attribute = attribute
        self.boundaries = boundaries

    def assign(self, row, schema):
        value = row[schema.position(self.attribute)]
        if value is None:
            raise WarehouseError(f"NULL {self.attribute!r} cannot be range-partitioned")
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                return index
        return self.site_count - 1

    def site_predicate(self, site_index, schema):
        field = Field(self.attribute, DETAIL_VAR)
        if site_index == 0:
            return field <= self.boundaries[0]
        if site_index == self.site_count - 1:
            return field > self.boundaries[-1]
        return (field > self.boundaries[site_index - 1]) & (
            field <= self.boundaries[site_index]
        )

    def partition_attributes(self):
        return (self.attribute,)


class HashPartitioner(Partitioner):
    """Deterministic hash of one or more attributes.

    The hashed attributes are partition attributes (each value lands on
    exactly one site) but φᵢ is not expressible as a simple predicate, so
    distribution-aware reduction cannot fire — only Corollary 1 can.
    """

    def __init__(self, attributes: Sequence[str], site_count: int):
        super().__init__(site_count)
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise WarehouseError("hash partitioner needs at least one attribute")

    def assign(self, row, schema):
        key = tuple(row[schema.position(name)] for name in self.attributes)
        return _stable_hash(key) % self.site_count

    def partition_attributes(self):
        # A combination of attributes is a partition "attribute" only when
        # it is a single attribute; multi-attribute hashes guarantee
        # disjointness of the *tuple*, not of each attribute.
        return self.attributes if len(self.attributes) == 1 else ()


class RoundRobinPartitioner(Partitioner):
    """Row-order striping: no distribution knowledge at all.

    The worst case for Skalla's optimizations — every group can live on
    every site — used as the "no knowledge" baseline in tests.
    """

    def assign(self, row, schema):
        index = self._counter
        self._counter = (index + 1) % self.site_count
        return index

    def split(self, relation):
        self._counter = 0
        return super().split(relation)

    def __init__(self, site_count: int):
        super().__init__(site_count)
        self._counter = 0


def _stable_hash(key: tuple) -> int:
    """A process-independent hash (Python's ``hash`` is salted for str)."""
    result = 1469598103934665603  # FNV-1a offset basis
    for part in key:
        for byte in repr(part).encode("utf-8"):
            result ^= byte
            result = (result * 1099511628211) % (1 << 64)
    return result
