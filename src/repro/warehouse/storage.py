"""Local data warehouses: the per-site storage engine.

Each Skalla site is "adjacent" to a collection point and stores its
partition of every fact relation (Section 2.1). A
:class:`LocalWarehouse` is a named-table store capable of the local
operations Alg. GMDJDistribEval requires — scans, distinct projections
and GMDJ evaluation — via the ``repro.relalg`` / ``repro.gmdj`` engines.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from repro.errors import WarehouseError
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema


class LocalWarehouse:
    """A named collection of relations held by one site (or coordinator)."""

    def __init__(self, name: str = "warehouse", tables: Optional[Mapping[str, Relation]] = None):
        self.name = name
        self._tables: dict = {}
        #: Monotonic per-table data version, bumped by every mutation
        #: (register/append/drop). Never reset — a dropped-and-reloaded
        #: table keeps counting, so stale cached plans can never collide
        #: with a same-numbered later state.
        self._versions: dict = {}
        if tables:
            for table_name, relation in tables.items():
                self.register(table_name, relation)

    def register(self, table_name: str, relation: Relation) -> None:
        """Add or replace a table."""
        if not isinstance(relation, Relation):
            raise WarehouseError(f"expected Relation for {table_name!r}, got {relation!r}")
        self._tables[table_name] = relation
        self._versions[table_name] = self._versions.get(table_name, 0) + 1

    def append(self, table_name: str, relation: Relation) -> None:
        """Append rows to an existing table (same schema required)."""
        existing = self.table(table_name)
        self._tables[table_name] = existing.union_all(relation)
        self._versions[table_name] = self._versions.get(table_name, 0) + 1

    def drop(self, table_name: str) -> None:
        try:
            del self._tables[table_name]
        except KeyError:
            raise WarehouseError(f"{self.name}: unknown table {table_name!r}") from None
        self._versions[table_name] = self._versions.get(table_name, 0) + 1

    def version(self, table_name: str) -> int:
        """The table's data version (0 = never held).

        Every mutation — :meth:`register`, :meth:`append`, :meth:`drop` —
        increments it, so equal versions imply identical table contents
        within one process. The query service keys its result cache on
        these (per site) to decide hit / refresh-upgrade / miss.
        """
        return self._versions.get(table_name, 0)

    def table(self, table_name: str) -> Relation:
        try:
            return self._tables[table_name]
        except KeyError:
            raise WarehouseError(
                f"{self.name}: unknown table {table_name!r}; "
                f"have {sorted(self._tables)}"
            ) from None

    def schema(self, table_name: str) -> Schema:
        return self.table(table_name).schema

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables

    def table_names(self) -> tuple:
        return tuple(sorted(self._tables))

    def tables(self) -> Mapping[str, Relation]:
        """Read-only view of all tables (for centralized evaluation)."""
        return dict(self._tables)

    def row_count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    def __repr__(self):
        inner = ", ".join(
            f"{name}({len(relation)})" for name, relation in sorted(self._tables.items())
        )
        return f"LocalWarehouse({self.name!r}: {inner})"
