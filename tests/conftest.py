"""Shared fixtures and reference implementations for the test suite.

The key piece is :func:`brute_force_gmdj`: a direct, slow transcription
of Definition 1 (per base tuple, filter the detail relation with the
condition, aggregate). It shares no code with the hash-based production
evaluator, so agreement between the two is meaningful evidence of
correctness.
"""

from __future__ import annotations

import random

import pytest

from repro.gmdj.blocks import MDBlock, result_schema
from repro.relalg.aggregates import AggSpec
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------


def brute_force_gmdj(base: Relation, detail: Relation, blocks) -> Relation:
    """Definition 1, evaluated the naive way (no hashing, no compiling)."""
    rows = []
    base_names = base.schema.names
    detail_names = detail.schema.names
    for base_row in base.rows:
        base_dict = dict(zip(base_names, base_row))
        out = list(base_row)
        for block in blocks:
            matching = []
            for detail_row in detail.rows:
                detail_dict = dict(zip(detail_names, detail_row))
                bindings = {BASE_VAR: base_dict, DETAIL_VAR: detail_dict, None: detail_dict}
                if block.condition.eval(bindings):
                    matching.append(detail_dict)
            for spec in block.aggregates:
                accumulator = spec.accumulator()
                for detail_dict in matching:
                    if spec.input_expr is None:
                        accumulator.update(None)
                    else:
                        bindings = {DETAIL_VAR: detail_dict, None: detail_dict}
                        accumulator.update(spec.input_expr.eval(bindings))
                out.append(accumulator.result())
        rows.append(tuple(out))
    return Relation(result_schema(base.schema, blocks), rows)


def assert_relations_equal(left: Relation, right: Relation, places: int = 9):
    """Multiset row equality with float tolerance, aligned by column name."""
    assert set(left.schema.names) == set(right.schema.names), (
        f"schemas differ: {left.schema!r} vs {right.schema!r}"
    )
    aligned = right.project(left.schema.names)
    left_rows = sorted(left.rows, key=_sort_key)
    right_rows = sorted(aligned.rows, key=_sort_key)
    assert len(left_rows) == len(right_rows), (
        f"row counts differ: {len(left_rows)} vs {len(right_rows)}"
    )
    for l_row, r_row in zip(left_rows, right_rows):
        for l_value, r_value in zip(l_row, r_row):
            if isinstance(l_value, float) and isinstance(r_value, float):
                assert l_value == pytest.approx(r_value, abs=10 ** -places), (
                    f"{l_row} vs {r_row}"
                )
            else:
                assert l_value == r_value, f"{l_row} vs {r_row}"


def _sort_key(row):
    return tuple((value is not None, str(type(value)), value) for value in row)


# ---------------------------------------------------------------------------
# Data fixtures
# ---------------------------------------------------------------------------

FLOW_TEST_SCHEMA = Schema.of(
    ("RouterId", INT), ("SourceAS", INT), ("DestAS", INT), ("NumBytes", FLOAT)
)


def make_flows(count: int = 200, seed: int = 3, routers: int = 4) -> Relation:
    """Small deterministic flow-like relation; SourceAS pinned to router."""
    rng = random.Random(seed)
    rows = []
    for _index in range(count):
        source_as = rng.randrange(0, 16)
        rows.append(
            (
                source_as % routers,
                source_as,
                rng.randrange(0, 8),
                float(rng.randrange(40, 4000)),
            )
        )
    return Relation(FLOW_TEST_SCHEMA, rows)


@pytest.fixture
def flows() -> Relation:
    return make_flows()


@pytest.fixture
def tiny_relation() -> Relation:
    schema = Schema.of(("k", INT), ("v", FLOAT), ("name", STR))
    return Relation(
        schema,
        [
            (1, 10.0, "a"),
            (1, 20.0, "b"),
            (2, 5.0, "a"),
            (2, None, "c"),
            (3, 7.5, None),
        ],
    )


def count_and_sum_blocks(key: str = "SourceAS", measure: str = "NumBytes"):
    """A standard single block: COUNT(*) and SUM(measure) grouped on key."""
    from repro.relalg.expressions import Field

    condition = Field(key, BASE_VAR) == Field(key, DETAIL_VAR)
    return [
        MDBlock(
            [
                AggSpec("count", None, "cnt"),
                AggSpec("sum", Field(measure, DETAIL_VAR), "total"),
            ],
            condition,
        )
    ]
