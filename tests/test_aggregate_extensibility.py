"""Tests for custom aggregate registration and the geomean aggregate."""

import math

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.errors import AggregateError
from repro.queries.olap import group_by_query
from repro.relalg.aggregates import (
    ALGEBRAIC,
    AggregateFunction,
    AggSpec,
    MaxComponent,
    MinComponent,
    register_aggregate,
)
from repro.relalg.expressions import col, detail
from repro.relalg.schema import INT
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=150, seed=151)


def run(spec, values):
    accumulator = spec.accumulator()
    for value in values:
        accumulator.update(value)
    return accumulator.result()


class TestGeomean:
    def test_basic(self):
        assert run(AggSpec("geomean", col.x, "g"), [2.0, 8.0]) == pytest.approx(4.0)

    def test_skips_nonpositive_and_null(self):
        result = run(AggSpec("geomean", col.x, "g"), [2.0, None, 0.0, -3.0, 8.0])
        assert result == pytest.approx(4.0)

    def test_empty_is_null(self):
        assert run(AggSpec("geomean", col.x, "g"), []) is None
        assert run(AggSpec("geomean", col.x, "g"), [-1.0]) is None

    def test_is_algebraic_and_decomposes(self):
        spec = AggSpec("geomean", col.x, "g")
        assert spec.classification == ALGEBRAIC
        left = spec.accumulator()
        right = spec.accumulator()
        for value in (2.0, 4.0):
            left.update(value)
        for value in (8.0, 16.0):
            right.update(value)
        merged = spec.accumulator()
        merged.load_sub_values(left.sub_values())
        merged.load_sub_values(right.sub_values())
        direct = run(spec, [2.0, 4.0, 8.0, 16.0])
        assert merged.result() == pytest.approx(direct)

    def test_distributed_evaluation(self):
        cluster = SimulatedCluster.with_sites(3)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 3)
        )
        expression = group_by_query(
            "Flow", ["SourceAS"], [AggSpec("geomean", detail.NumBytes, "g")]
        )
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, OptimizationOptions.all())
        assert_relations_equal(reference, result.relation)


class SpreadFunction(AggregateFunction):
    """max - min: a custom algebraic aggregate for the registration test."""

    name = "spread"
    classification = ALGEBRAIC

    def components(self):
        return (("min", MinComponent()), ("max", MaxComponent()))

    def finalize(self, component_values):
        lowest, highest = component_values
        if lowest is None or highest is None:
            return None
        return highest - lowest


class TestRegistration:
    @pytest.fixture(autouse=True)
    def register_spread(self):
        try:
            register_aggregate("spread", lambda star: SpreadFunction())
        except AggregateError:
            pass  # already registered by an earlier test in this session
        yield

    def test_custom_aggregate_works(self):
        spec = AggSpec("spread", col.x, "s")
        assert run(spec, [3.0, 10.0, 7.0]) == 7.0
        assert run(spec, []) is None

    def test_custom_aggregate_in_sql(self):
        from repro.queries.sql import parse_olap_query

        expression = parse_olap_query(
            "SELECT SourceAS, SPREAD(NumBytes) AS s FROM Flow GROUP BY SourceAS"
        )
        result = expression.evaluate_centralized({"Flow": FLOW})
        assert "s" in result.schema

    def test_custom_aggregate_distributed(self):
        cluster = SimulatedCluster.with_sites(3)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 3)
        )
        expression = group_by_query(
            "Flow", ["SourceAS"], [AggSpec("spread", detail.NumBytes, "s")]
        )
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, OptimizationOptions.all())
        assert_relations_equal(reference, result.relation)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AggregateError):
            register_aggregate("spread", lambda star: SpreadFunction())

    def test_replace_allowed(self):
        register_aggregate("spread", lambda star: SpreadFunction(), replace=True)

    def test_invalid_name(self):
        with pytest.raises(AggregateError):
            register_aggregate("not a name", lambda star: SpreadFunction())

    def test_factory_type_checked(self):
        with pytest.raises(AggregateError):
            register_aggregate("bogus", lambda star: object())

    def test_result_type_respected(self):
        class IntResult(SpreadFunction):
            name = "intspread"
            result_type = INT

        register_aggregate("intspread", lambda star: IntResult(), replace=True)
        spec = AggSpec("intspread", col.x, "s")
        assert spec.result_attribute().type == INT
