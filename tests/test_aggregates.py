"""Unit tests for aggregate functions and their sub/super decomposition."""

import math

import pytest

from repro.errors import AggregateError, HolisticAggregateError
from repro.relalg.aggregates import (
    ALGEBRAIC,
    DISTRIBUTIVE,
    HOLISTIC,
    AggSpec,
    count_star,
)
from repro.relalg.expressions import col, detail
from repro.relalg.schema import FLOAT, INT, Schema


def run(spec: AggSpec, values):
    accumulator = spec.accumulator()
    for value in values:
        accumulator.update(value)
    return accumulator.result()


def run_split(spec: AggSpec, values, split_at):
    """Aggregate via two partial accumulators merged through sub-values."""
    left = spec.accumulator()
    right = spec.accumulator()
    for value in values[:split_at]:
        left.update(value)
    for value in values[split_at:]:
        right.update(value)
    merged = spec.accumulator()
    merged.load_sub_values(left.sub_values())
    merged.load_sub_values(right.sub_values())
    return merged.result()


class TestSemantics:
    def test_count_star_counts_everything(self):
        spec = count_star("c")
        assert run(spec, [1, None, 3]) == 3

    def test_count_expr_skips_nulls(self):
        spec = AggSpec("count", col.x, "c")
        assert run(spec, [1, None, 3]) == 2

    def test_sum(self):
        spec = AggSpec("sum", col.x, "s")
        assert run(spec, [1.0, 2.0, None]) == 3.0

    def test_sum_empty_is_null(self):
        assert run(AggSpec("sum", col.x, "s"), []) is None

    def test_sum_all_null_is_null(self):
        assert run(AggSpec("sum", col.x, "s"), [None, None]) is None

    def test_min_max(self):
        values = [5.0, None, 1.0, 3.0]
        assert run(AggSpec("min", col.x, "m"), values) == 1.0
        assert run(AggSpec("max", col.x, "m"), values) == 5.0
        assert run(AggSpec("min", col.x, "m"), []) is None

    def test_avg(self):
        assert run(AggSpec("avg", col.x, "a"), [1.0, 2.0, None, 3.0]) == 2.0
        assert run(AggSpec("avg", col.x, "a"), []) is None
        assert run(AggSpec("avg", col.x, "a"), [None]) is None

    def test_var_and_std(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert run(AggSpec("var", col.x, "v"), values) == pytest.approx(4.0)
        assert run(AggSpec("std", col.x, "s"), values) == pytest.approx(2.0)

    def test_var_single_value_is_zero(self):
        assert run(AggSpec("var", col.x, "v"), [3.0]) == pytest.approx(0.0)

    def test_var_empty_is_null(self):
        assert run(AggSpec("var", col.x, "v"), []) is None

    def test_median_odd_even(self):
        assert run(AggSpec("median", col.x, "m"), [3.0, 1.0, 2.0]) == 2.0
        assert run(AggSpec("median", col.x, "m"), [4.0, 1.0, 2.0, 3.0]) == 2.5
        assert run(AggSpec("median", col.x, "m"), [None]) is None

    def test_count_distinct(self):
        assert run(AggSpec("count_distinct", col.x, "d"), [1, 1, 2, None]) == 2


class TestDecomposition:
    CASES = [
        (count_star("c"), [1, None, 2, 2]),
        (AggSpec("count", col.x, "c"), [1, None, 2, 2]),
        (AggSpec("sum", col.x, "s"), [1.0, -2.0, None, 4.0]),
        (AggSpec("min", col.x, "m"), [3.0, None, 1.0]),
        (AggSpec("max", col.x, "m"), [3.0, None, 9.0]),
        (AggSpec("avg", col.x, "a"), [1.0, 2.0, None, 7.0]),
        (AggSpec("var", col.x, "v"), [1.0, 2.0, 3.0, 4.0]),
        (AggSpec("std", col.x, "v"), [1.0, 2.0, 3.0, 4.0]),
    ]

    @pytest.mark.parametrize("spec,values", CASES, ids=[c[0].func for c in CASES])
    def test_split_equals_direct_every_split_point(self, spec, values):
        direct = run(spec, values)
        for split_at in range(len(values) + 1):
            split = run_split(spec, values, split_at)
            if direct is None:
                assert split is None
            else:
                assert split == pytest.approx(direct)

    @pytest.mark.parametrize("spec,values", CASES, ids=[c[0].func for c in CASES])
    def test_merge_accumulators_equals_direct(self, spec, values):
        left = spec.accumulator()
        right = spec.accumulator()
        for value in values[:2]:
            left.update(value)
        for value in values[2:]:
            right.update(value)
        left.merge(right)
        direct = run(spec, values)
        if direct is None:
            assert left.result() is None
        else:
            assert left.result() == pytest.approx(direct)

    def test_empty_partition_contributes_nothing(self):
        spec = AggSpec("avg", col.x, "a")
        main = spec.accumulator()
        main.update(4.0)
        empty = spec.accumulator()
        main.load_sub_values(empty.sub_values())
        assert main.result() == 4.0

    def test_classifications(self):
        assert count_star("c").classification == DISTRIBUTIVE
        assert AggSpec("avg", col.x, "a").classification == ALGEBRAIC
        assert AggSpec("median", col.x, "m").classification == HOLISTIC
        assert AggSpec("median", col.x, "m").is_holistic

    def test_holistic_sub_values_raise(self):
        accumulator = AggSpec("median", col.x, "m").accumulator()
        accumulator.update(1.0)
        with pytest.raises(HolisticAggregateError):
            accumulator.sub_values()
        with pytest.raises(HolisticAggregateError):
            accumulator.load_sub_values(())

    def test_holistic_merge_works_centrally(self):
        spec = AggSpec("median", col.x, "m")
        left = spec.accumulator()
        right = spec.accumulator()
        left.update(1.0)
        right.update(3.0)
        right.update(2.0)
        left.merge(right)
        assert left.result() == 2.0


class TestAggSpec:
    def test_unknown_function(self):
        with pytest.raises(AggregateError):
            AggSpec("frobnicate", col.x, "f")

    def test_count_star_requires_no_input(self):
        assert count_star("c").input_expr is None

    def test_sum_requires_input(self):
        with pytest.raises(AggregateError):
            AggSpec("sum", None, "s")

    def test_output_name_required(self):
        with pytest.raises(AggregateError):
            AggSpec("sum", col.x, "")

    def test_plain_value_input_is_wrapped(self):
        spec = AggSpec("sum", 1, "ones")
        assert run(spec, [1, 1]) is not None  # runnable

    def test_result_attribute_types(self):
        assert count_star("c").result_attribute().type == INT
        assert AggSpec("avg", col.x, "a").result_attribute().type == FLOAT

    def test_sub_attributes_single_component(self):
        assert [a.name for a in AggSpec("sum", col.x, "s").sub_attributes()] == ["s"]

    def test_sub_attributes_avg(self):
        names = [a.name for a in AggSpec("avg", col.x, "a").sub_attributes()]
        assert names == ["a__sum", "a__count"]

    def test_sub_attributes_var(self):
        names = [a.name for a in AggSpec("var", col.x, "v").sub_attributes()]
        assert names == ["v__sum", "v__sumsq", "v__count"]

    def test_compile_input_star_is_none(self):
        assert count_star("c").compile_input(Schema.of("x")) is None

    def test_compile_input_detail_namespace(self):
        schema = Schema.of(("x", FLOAT),)
        func = AggSpec("sum", detail.x, "s").compile_input(schema)
        assert func({"r": (4.0,), None: (4.0,)}) == 4.0

    def test_compile_input_unqualified(self):
        schema = Schema.of(("x", FLOAT),)
        func = AggSpec("sum", col.x * 2, "s").compile_input(schema)
        assert func({"r": (4.0,), None: (4.0,)}) == 8.0

    def test_str(self):
        assert "count(*)" in str(count_star("c"))
