"""Unit tests for optimizer condition analysis (Theorems 4/5, Prop 2, Cor 1).

The soundness contract of :func:`derive_ship_filter` — base rows failing
the filter can never contribute at the site — is additionally covered by
a hypothesis property test in test_property_analysis.py; here we check
the specific derivations the paper describes.
"""

from repro.gmdj.analysis import (
    derive_ship_filter,
    entailed_partition_attribute,
    site_can_match,
    theta_entails_key,
)
from repro.relalg.expressions import BASE_VAR, Const, base, detail
from repro.relalg.predicates import is_trivially_false


def filter_admits(ship_filter, **base_row):
    predicate_input = {BASE_VAR: base_row}
    return bool(ship_filter.eval(predicate_input))


class TestDeriveShipFilter:
    def test_equality_atom_with_value_set(self):
        # Example 2 of the paper: site 1 handles SourceAS in a known set.
        phi = detail.SourceAS.is_in([1, 2, 3])
        theta = base.SourceAS == detail.SourceAS
        ship_filter = derive_ship_filter([theta], phi)
        assert ship_filter is not None
        assert filter_admits(ship_filter, SourceAS=2)
        assert not filter_admits(ship_filter, SourceAS=9)

    def test_equality_atom_with_range(self):
        phi = detail.SourceAS.between(1, 25)
        theta = base.SourceAS == detail.SourceAS
        ship_filter = derive_ship_filter([theta], phi)
        assert filter_admits(ship_filter, SourceAS=25)
        assert not filter_admits(ship_filter, SourceAS=26)

    def test_paper_linear_arithmetic_example(self):
        # Section 4.1: theta is B.DestAS + B.SourceAS < Flow.SourceAS * 2
        # with phi: SourceAS in [1, 25]; derived filter must be
        # DestAS + SourceAS < 50.
        phi = detail.SourceAS.between(1, 25)
        theta = base.DestAS + base.SourceAS < detail.SourceAS * 2
        ship_filter = derive_ship_filter([theta], phi)
        assert ship_filter is not None
        assert filter_admits(ship_filter, DestAS=24, SourceAS=25)  # 49 < 50
        assert not filter_admits(ship_filter, DestAS=25, SourceAS=25)  # 50

    def test_disjunction_across_conditions(self):
        phi = detail.SourceAS.is_in([1, 2])
        theta1 = base.SourceAS == detail.SourceAS
        theta2 = base.OtherAS == detail.SourceAS
        ship_filter = derive_ship_filter([theta1, theta2], phi)
        # Matching either condition suffices.
        assert filter_admits(ship_filter, SourceAS=1, OtherAS=99)
        assert filter_admits(ship_filter, SourceAS=99, OtherAS=2)
        assert not filter_admits(ship_filter, SourceAS=99, OtherAS=99)

    def test_unanalyzable_condition_gives_none(self):
        phi = detail.SourceAS.is_in([1])
        theta = base.X == detail.UnconstrainedAttr
        assert derive_ship_filter([theta], phi) is None

    def test_one_unanalyzable_theta_defeats_all(self):
        phi = detail.SourceAS.is_in([1])
        good = base.SourceAS == detail.SourceAS
        bad = base.X == detail.Unconstrained
        assert derive_ship_filter([good, bad], phi) is None

    def test_empty_phi_gives_none(self):
        theta = base.SourceAS == detail.SourceAS
        assert derive_ship_filter([theta], Const(True)) is None

    def test_base_only_conjunct_included(self):
        phi = detail.SourceAS.is_in([1, 2])
        theta = (base.SourceAS == detail.SourceAS) & (base.Flag > 10)
        ship_filter = derive_ship_filter([theta], phi)
        assert filter_admits(ship_filter, SourceAS=1, Flag=11)
        assert not filter_admits(ship_filter, SourceAS=1, Flag=5)

    def test_unsatisfiable_detail_conjunct_gives_false(self):
        phi = detail.SourceAS.between(1, 10)
        theta = (base.K == detail.K) & (detail.SourceAS > 100)
        ship_filter = derive_ship_filter([theta], phi)
        assert ship_filter is not None
        assert is_trivially_false(ship_filter) or not filter_admits(ship_filter, K=1)

    def test_inequality_relaxation_upper(self):
        phi = detail.V.between(0, 100)
        theta = base.Threshold <= detail.V
        ship_filter = derive_ship_filter([theta], phi)
        assert filter_admits(ship_filter, Threshold=100)
        assert not filter_admits(ship_filter, Threshold=101)

    def test_inequality_relaxation_lower(self):
        phi = detail.V.between(10, 100)
        theta = base.Cap > detail.V
        ship_filter = derive_ship_filter([theta], phi)
        assert filter_admits(ship_filter, Cap=11)
        assert not filter_admits(ship_filter, Cap=10)

    def test_not_equal_gives_no_restriction(self):
        phi = detail.V.between(0, 10)
        theta = base.A != detail.V
        assert derive_ship_filter([theta], phi) is None

    def test_detail_expression_interval(self):
        phi = detail.A.between(0, 10) & detail.B.between(0, 5)
        theta = base.X == detail.A + detail.B
        ship_filter = derive_ship_filter([theta], phi)
        assert filter_admits(ship_filter, X=15)
        assert not filter_admits(ship_filter, X=16)


class TestKeyEntailment:
    def test_all_conditions_must_entail(self):
        theta1 = (base.a == detail.a) & (base.b == detail.b)
        theta2 = base.a == detail.a
        assert theta_entails_key([theta1], ["a", "b"])
        assert not theta_entails_key([theta1, theta2], ["a", "b"])
        assert theta_entails_key([theta1, theta2], ["a"])


class TestPartitionAttributeEntailment:
    def test_finds_common_attribute(self):
        theta1 = (base.nation == detail.nation) & (detail.v > 0)
        theta2 = (base.nation == detail.nation) & (base.c == detail.c)
        assert (
            entailed_partition_attribute([theta1, theta2], ["nation", "cust"])
            == "nation"
        )

    def test_none_when_missing(self):
        theta = base.cust == detail.cust
        assert entailed_partition_attribute([theta], ["nation"]) is None

    def test_prefers_first_listed(self):
        theta = (base.nation == detail.nation) & (base.cust == detail.cust)
        assert (
            entailed_partition_attribute([theta], ["cust", "nation"]) == "cust"
        )


class TestSiteCanMatch:
    def test_satisfiable(self):
        phi = detail.SourceAS.between(1, 10)
        theta = (base.K == detail.K) & (detail.SourceAS > 5)
        assert site_can_match([theta], phi)

    def test_unsatisfiable(self):
        phi = detail.SourceAS.between(1, 10)
        theta = (base.K == detail.K) & (detail.SourceAS > 50)
        assert not site_can_match([theta], phi)

    def test_one_satisfiable_theta_is_enough(self):
        phi = detail.SourceAS.between(1, 10)
        impossible = (base.K == detail.K) & (detail.SourceAS > 50)
        possible = base.K == detail.K
        assert site_can_match([impossible, possible], phi)

    def test_no_knowledge_means_maybe(self):
        assert site_can_match([base.K == detail.K], Const(True))
