"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    ShapeCheckError,
    format_table,
    growth_exponent,
    run_arm,
    run_arms,
    scaleup_cluster,
    speedup_cluster,
)
from repro.bench.figures import NO_OPTS, ALL_OPTS, correlated_query, HIGH_CARDINALITY_KEY
from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.net.costmodel import FREE

TPCR = generate_tpcr(TPCRConfig(scale=0.0002, seed=3))


class TestClusterBuilders:
    def test_speedup_cluster_structure(self):
        cluster = speedup_cluster(TPCR, participating=3, total_sites=8)
        assert cluster.site_count == 3
        assert cluster.catalog.is_registered("TPCR")
        # Each participating site holds one original 1/8 partition.
        held = sum(
            cluster.site(site_id).warehouse.row_count("TPCR")
            for site_id in cluster.site_ids
        )
        assert 0 < held < len(TPCR)
        # FDs registered: CustName is a partition attribute.
        assert cluster.catalog.is_partition_attribute("TPCR", "CustName")

    def test_speedup_participating_data_grows(self):
        sizes = []
        for sites in (1, 4, 8):
            cluster = speedup_cluster(TPCR, sites, 8)
            sizes.append(
                sum(
                    cluster.site(site_id).warehouse.row_count("TPCR")
                    for site_id in cluster.site_ids
                )
            )
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[2] == len(TPCR)

    def test_speedup_validates_range(self):
        with pytest.raises(ShapeCheckError):
            speedup_cluster(TPCR, 0)
        with pytest.raises(ShapeCheckError):
            speedup_cluster(TPCR, 9, 8)

    def test_scaleup_cluster(self):
        cluster = scaleup_cluster(TPCRConfig(scale=0.0002, seed=3), sites=4)
        assert cluster.site_count == 4
        assert cluster.conceptual_table("TPCR").same_rows(TPCR)


class TestRunArms:
    def test_measurements_populated(self):
        cluster = speedup_cluster(TPCR, 2, 8)
        measurements = run_arms(
            cluster,
            correlated_query(HIGH_CARDINALITY_KEY),
            {"none": NO_OPTS, "all": ALL_OPTS},
            model=FREE,
        )
        assert set(measurements) == {"none", "all"}
        for measurement in measurements.values():
            assert measurement.matches_reference
            assert measurement.theorem2_ok
            assert measurement.bytes_total > 0
            assert measurement.result_rows > 0
        assert measurements["all"].bytes_total < measurements["none"].bytes_total
        assert (
            measurements["all"].synchronizations
            < measurements["none"].synchronizations
        )

    def test_run_arm_without_reference_check(self):
        cluster = speedup_cluster(TPCR, 2, 8)
        measurement = run_arm(
            cluster, correlated_query(HIGH_CARDINALITY_KEY), "solo", NO_OPTS
        )
        assert measurement.arm == "solo"


class TestHelpers:
    def test_growth_exponent_linear(self):
        xs = [1, 2, 4, 8]
        assert growth_exponent(xs, [3 * x for x in xs]) == pytest.approx(1.0)

    def test_growth_exponent_quadratic(self):
        xs = [1, 2, 4, 8]
        assert growth_exponent(xs, [x * x for x in xs]) == pytest.approx(2.0)

    def test_growth_exponent_needs_points(self):
        with pytest.raises(ShapeCheckError):
            growth_exponent([1], [1])

    def test_format_table(self):
        text = format_table(["a", "bee"], [["1", "2"], ["30", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bee" in lines[0]
