"""Unit tests for the distribution catalog."""

import pytest

from repro.errors import CatalogError
from repro.relalg.expressions import detail
from repro.relalg.schema import FLOAT, INT, Schema
from repro.warehouse.catalog import DistributionCatalog
from repro.warehouse.partition import HashPartitioner, ValueListPartitioner

SCHEMA = Schema.of(("nation", INT), ("cust", INT), ("v", FLOAT))


class TestRegistration:
    def test_register_and_lookup(self):
        catalog = DistributionCatalog()
        phi = detail.nation.is_in([0, 1])
        catalog.register("T", ["s0", "s1"], {"s0": phi}, ["nation"])
        assert catalog.is_registered("T")
        assert catalog.sites("T") == ("s0", "s1")
        assert catalog.phi("T", "s0") is phi
        assert catalog.phi("T", "s1") is None
        assert catalog.partition_attributes("T") == ("nation",)
        assert catalog.is_partition_attribute("T", "nation")
        assert not catalog.is_partition_attribute("T", "v")
        assert catalog.has_site_predicates("T")

    def test_register_no_sites_rejected(self):
        with pytest.raises(CatalogError):
            DistributionCatalog().register("T", [])

    def test_phi_for_unknown_site_rejected(self):
        with pytest.raises(CatalogError):
            DistributionCatalog().register(
                "T", ["s0"], {"ghost": detail.nation == 1}
            )

    def test_unregistered_lookup_raises(self):
        with pytest.raises(CatalogError):
            DistributionCatalog().sites("nope")


class TestRegisterPartitioner:
    def test_value_list_partitioner_registers_phi(self):
        catalog = DistributionCatalog()
        partitioner = ValueListPartitioner.spread("nation", range(4), 2)
        catalog.register_partitioner("T", partitioner, ["s0", "s1"], SCHEMA)
        assert catalog.has_site_predicates("T")
        assert catalog.partition_attributes("T") == ("nation",)

    def test_hash_partitioner_registers_attr_but_no_phi(self):
        catalog = DistributionCatalog()
        partitioner = HashPartitioner(["cust"], 2)
        catalog.register_partitioner("T", partitioner, ["s0", "s1"], SCHEMA)
        assert not catalog.has_site_predicates("T")
        assert catalog.partition_attributes("T") == ("cust",)

    def test_site_count_mismatch(self):
        catalog = DistributionCatalog()
        partitioner = HashPartitioner(["cust"], 2)
        with pytest.raises(CatalogError):
            catalog.register_partitioner("T", partitioner, ["s0"], SCHEMA)


class TestFunctionalDependencies:
    def test_fd_extends_partition_attributes(self):
        catalog = DistributionCatalog()
        catalog.register("T", ["s0"], partition_attrs=["nation"])
        catalog.add_functional_dependency("cust", "nation")
        assert set(catalog.partition_attributes("T")) == {"nation", "cust"}
        assert catalog.is_partition_attribute("T", "cust")

    def test_irrelevant_fd_ignored(self):
        catalog = DistributionCatalog()
        catalog.register("T", ["s0"], partition_attrs=["nation"])
        catalog.add_functional_dependency("v", "cust")
        assert catalog.partition_attributes("T") == ("nation",)

    def test_fd_without_partition_attrs(self):
        catalog = DistributionCatalog()
        catalog.register("T", ["s0"])
        catalog.add_functional_dependency("cust", "nation")
        assert catalog.partition_attributes("T") == ()
