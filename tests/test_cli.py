"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.queries.sql import SqlError


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])


class TestDemo:
    def test_demo_runs(self):
        code, output = run_cli(["demo", "--sites", "2", "--scale", "0.0002"])
        assert code == 0
        assert "no optimizations" in output
        assert "all optimizations" in output
        assert "NationKey" in output


class TestSql:
    QUERY = (
        "SELECT NationKey, COUNT(*) AS cnt FROM TPCR GROUP BY NationKey "
        "THEN SELECT MAX(Price) AS top WHERE Price > 0"
    )

    def test_star(self):
        code, output = run_cli(
            ["sql", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        )
        assert code == 0
        assert "syncs=" in output
        assert "cnt" in output

    def test_tree(self):
        code, output = run_cli(
            [
                "sql",
                self.QUERY,
                "--sites",
                "4",
                "--scale",
                "0.0002",
                "--topology",
                "tree:2",
            ]
        )
        assert code == 0
        assert "root-link bytes=" in output

    def test_flows_data(self):
        code, output = run_cli(
            [
                "sql",
                "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS",
                "--data",
                "flows",
                "--sites",
                "2",
                "--scale",
                "0.0001",
            ]
        )
        assert code == 0
        assert "flows" in output

    def test_bad_topology(self):
        code, _output = run_cli(
            ["sql", self.QUERY, "--topology", "ring", "--scale", "0.0002"]
        )
        assert code == 2

    def test_bad_sql_raises(self):
        with pytest.raises(SqlError):
            run_cli(["sql", "SELECT FROM nowhere"])


class TestTrace:
    QUERY = "SELECT NationKey, COUNT(*) AS cnt FROM TPCR GROUP BY NationKey"

    def test_timeline(self):
        code, output = run_cli(
            ["trace", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        )
        assert code == 0
        assert "per-round timeline" in output
        assert "totals: rounds=" in output
        assert "merge" in output
        assert "trace:" in output and "spans" in output

    def test_timeline_totals_match_stats(self):
        import re

        from repro.cli import _build_cluster, _options, build_parser
        from repro.distributed import execute_query
        from repro.queries.sql import parse_olap_statement

        argv = ["trace", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        code, output = run_cli(argv)
        assert code == 0
        footer = re.search(
            r"totals: rounds=(\d+) bytes=(\d+) \(down=(\d+) up=(\d+)\) tuples=(\d+)",
            output,
        )
        assert footer is not None
        args = build_parser().parse_args(argv)
        result = execute_query(
            _build_cluster(args),
            parse_olap_statement(args.query).expression,
            _options(args),
        )
        assert [int(group) for group in footer.groups()] == [
            result.stats.round_count,
            result.stats.bytes_total,
            result.stats.bytes_down,
            result.stats.bytes_up,
            result.stats.tuples_total,
        ]

    def test_json_round_trips(self):
        from repro.obs import SCHEMA_VERSION, EventLog

        code, output = run_cli(
            ["trace", self.QUERY, "--sites", "2", "--scale", "0.0002", "--json"]
        )
        assert code == 0
        log = EventLog.loads(output)
        assert log.schema_version == SCHEMA_VERSION
        assert log.records_of("span")
        assert log.records_of("metric")
        assert len(log.records_of("stats")) == 1
        assert EventLog.loads(log.dumps()) == log

    def test_emit_trace_writes_file(self, tmp_path):
        from repro.obs import EventLog

        path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            [
                "trace",
                self.QUERY,
                "--sites",
                "2",
                "--scale",
                "0.0002",
                "--emit-trace",
                str(path),
            ]
        )
        assert code == 0
        assert str(path) in output
        log = EventLog.load(path)
        log.validate()
        assert log.records_of("span")

    def test_tree_topology_rejected(self):
        code, _output = run_cli(
            ["trace", self.QUERY, "--topology", "tree:2", "--scale", "0.0002"]
        )
        assert code == 2


class TestFigures:
    def test_single_figure(self):
        code, output = run_cli(["figures", "fig2", "--scale", "0.0002"])
        assert code == 0
        assert "Figure 2" in output
        assert "predicted=" in output

    def test_aware_extension(self):
        code, output = run_cli(["figures", "fig2x", "--scale", "0.0002"])
        assert code == 0
        assert "aware" in output

    def test_fig3_and_fig4(self):
        code, output = run_cli(["figures", "fig3", "--scale", "0.0002"])
        assert code == 0
        assert "coalescing" in output
        code, output = run_cli(["figures", "fig4", "--scale", "0.0002"])
        assert code == 0
        assert "synchronization" in output

    def test_fig5(self):
        code, output = run_cli(["figures", "fig5", "--scale", "0.0002"])
        assert code == 0
        assert "scale-up" in output
