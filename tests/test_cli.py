"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.queries.sql import SqlError


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])


class TestDemo:
    def test_demo_runs(self):
        code, output = run_cli(["demo", "--sites", "2", "--scale", "0.0002"])
        assert code == 0
        assert "no optimizations" in output
        assert "all optimizations" in output
        assert "NationKey" in output


class TestSql:
    QUERY = (
        "SELECT NationKey, COUNT(*) AS cnt FROM TPCR GROUP BY NationKey "
        "THEN SELECT MAX(Price) AS top WHERE Price > 0"
    )

    def test_star(self):
        code, output = run_cli(
            ["sql", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        )
        assert code == 0
        assert "syncs=" in output
        assert "cnt" in output

    def test_tree(self):
        code, output = run_cli(
            [
                "sql",
                self.QUERY,
                "--sites",
                "4",
                "--scale",
                "0.0002",
                "--topology",
                "tree:2",
            ]
        )
        assert code == 0
        assert "root-link bytes=" in output

    def test_flows_data(self):
        code, output = run_cli(
            [
                "sql",
                "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS",
                "--data",
                "flows",
                "--sites",
                "2",
                "--scale",
                "0.0001",
            ]
        )
        assert code == 0
        assert "flows" in output

    def test_bad_topology(self):
        code, _output = run_cli(
            ["sql", self.QUERY, "--topology", "ring", "--scale", "0.0002"]
        )
        assert code == 2

    def test_bad_sql_raises(self):
        with pytest.raises(SqlError):
            run_cli(["sql", "SELECT FROM nowhere"])


class TestTrace:
    QUERY = "SELECT NationKey, COUNT(*) AS cnt FROM TPCR GROUP BY NationKey"

    def test_timeline(self):
        code, output = run_cli(
            ["trace", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        )
        assert code == 0
        assert "per-round timeline" in output
        assert "totals: rounds=" in output
        assert "merge" in output
        assert "trace:" in output and "spans" in output

    def test_timeline_totals_match_stats(self):
        import re

        from repro.cli import _build_cluster, _options, build_parser
        from repro.distributed import execute_query
        from repro.queries.sql import parse_olap_statement

        argv = ["trace", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        code, output = run_cli(argv)
        assert code == 0
        footer = re.search(
            r"totals: rounds=(\d+) bytes=(\d+) \(down=(\d+) up=(\d+)\) tuples=(\d+)",
            output,
        )
        assert footer is not None
        args = build_parser().parse_args(argv)
        result = execute_query(
            _build_cluster(args),
            parse_olap_statement(args.query).expression,
            _options(args),
        )
        assert [int(group) for group in footer.groups()] == [
            result.stats.round_count,
            result.stats.bytes_total,
            result.stats.bytes_down,
            result.stats.bytes_up,
            result.stats.tuples_total,
        ]

    def test_json_round_trips(self):
        from repro.obs import SCHEMA_VERSION, EventLog

        code, output = run_cli(
            ["trace", self.QUERY, "--sites", "2", "--scale", "0.0002", "--json"]
        )
        assert code == 0
        log = EventLog.loads(output)
        assert log.schema_version == SCHEMA_VERSION
        assert log.records_of("span")
        assert log.records_of("metric")
        assert len(log.records_of("stats")) == 1
        assert EventLog.loads(log.dumps()) == log

    def test_emit_trace_writes_file(self, tmp_path):
        from repro.obs import EventLog

        path = tmp_path / "trace.jsonl"
        code, output = run_cli(
            [
                "trace",
                self.QUERY,
                "--sites",
                "2",
                "--scale",
                "0.0002",
                "--emit-trace",
                str(path),
            ]
        )
        assert code == 0
        assert str(path) in output
        log = EventLog.load(path)
        log.validate()
        assert log.records_of("span")

    def test_tree_topology_rejected(self):
        code, _output = run_cli(
            ["trace", self.QUERY, "--topology", "tree:2", "--scale", "0.0002"]
        )
        assert code == 2


class TestFigures:
    def test_single_figure(self):
        code, output = run_cli(["figures", "fig2", "--scale", "0.0002"])
        assert code == 0
        assert "Figure 2" in output
        assert "predicted=" in output

    def test_aware_extension(self):
        code, output = run_cli(["figures", "fig2x", "--scale", "0.0002"])
        assert code == 0
        assert "aware" in output

    def test_fig3_and_fig4(self):
        code, output = run_cli(["figures", "fig3", "--scale", "0.0002"])
        assert code == 0
        assert "coalescing" in output
        code, output = run_cli(["figures", "fig4", "--scale", "0.0002"])
        assert code == 0
        assert "synchronization" in output

    def test_fig5(self):
        code, output = run_cli(["figures", "fig5", "--scale", "0.0002"])
        assert code == 0
        assert "scale-up" in output


class TestExplain:
    QUERY = (
        "SELECT NationKey, COUNT(*) AS cnt, AVG(Price) AS avg_price "
        "FROM TPCR GROUP BY NationKey "
        "THEN SELECT COUNT(*) AS above WHERE Price >= avg_price"
    )

    def test_estimate_only(self):
        code, output = run_cli(
            ["explain", self.QUERY, "--sites", "2", "--scale", "0.0003"]
        )
        assert code == 0
        assert "round 1" in output
        assert "optimizations (estimated by ablation)" in output
        assert "EXPLAIN ANALYZE" not in output  # estimate-only does not run

    def test_analyze_renders_tree_and_meets_bars(self):
        code, output = run_cli(
            ["explain", self.QUERY, "--sites", "2", "--scale", "0.0003",
             "--analyze"]
        )
        assert code == 0, output
        assert "EXPLAIN ANALYZE" in output
        assert "attributed to plan nodes" in output
        assert "optimizations (measured vs unoptimized estimate)" in output
        assert "+- site0" in output
        assert "+- merge" in output

    def test_analyze_json_profile(self):
        import json

        code, output = run_cli(
            ["explain", self.QUERY, "--sites", "2", "--scale", "0.0003",
             "--analyze", "--json"]
        )
        assert code == 0
        profile = json.loads(output)
        assert profile["time_coverage"] >= 0.95
        assert profile["bytes_coverage"] == 1.0
        assert profile["optimizations"], "applied optimizations must be priced"
        for entry in profile["optimizations"]:
            assert entry["measured_tuples"] is not None

    def test_analyze_emit_trace_is_profilable(self, tmp_path):
        from repro.obs import EventLog
        from repro.obs.profile import profile_from_trace

        path = tmp_path / "explain.jsonl"
        code, _output = run_cli(
            ["explain", self.QUERY, "--sites", "2", "--scale", "0.0003",
             "--analyze", "--emit-trace", str(path)]
        )
        assert code == 0
        rebuilt = profile_from_trace(EventLog.load(path), query_id=1)
        assert rebuilt.time_coverage() >= 0.95

    def test_estimate_json(self):
        import json

        code, output = run_cli(
            ["explain", self.QUERY, "--sites", "2", "--scale", "0.0003",
             "--json"]
        )
        assert code == 0
        document = json.loads(output)
        assert "plan" in document
        assert document["optimizations"]


class TestTop:
    def test_one_frame_from_live_endpoint(self):
        from repro.obs import MetricsRegistry, start_metrics_server

        registry = MetricsRegistry()
        registry.counter("service.queries").inc(4)
        with start_metrics_server(registry, port=0) as server:
            code, output = run_cli(
                ["top", "--url", server.url, "--iterations", "1",
                 "--interval", "0"]
            )
        assert code == 0
        assert "repro top" in output
        assert "queries=4" in output

    def test_unreachable_endpoint_exits_nonzero(self):
        code, output = run_cli(
            ["top", "--url", "http://127.0.0.1:1/metrics",
             "--iterations", "1", "--interval", "0"]
        )
        assert code == 1
        assert "unreachable" in output


class TestBench:
    def test_bench_report_and_check(self, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        code, output = run_cli(
            ["bench", "--sites", "2", "--scale", "0.0003",
             "--output", str(baseline)]
        )
        assert code == 0
        report = json.loads(baseline.read_text())
        assert report["profiler"]["time_coverage"] >= 0.95
        assert report["profiler"]["bytes_coverage"] == 1.0
        assert report["profiler"]["overhead_frac"] < 0.05

        # Checking a fresh run against its own numbers passes. The SLO
        # gate is pointed at a missing file so this test does not re-run
        # the committed BENCH_slo.json sweep (repro loadgen has its own).
        code, output = run_cli(
            ["bench", "--sites", "2", "--scale", "0.0003", "--check",
             "--baseline", str(baseline),
             "--slo-baseline", str(tmp_path / "no-slo.json")]
        )
        assert code == 0
        assert "no regression" in output

    def test_check_fails_on_regression(self, tmp_path):
        import json

        from repro.bench.harness import check_profile_baseline

        good = {
            "profiler": {
                "time_coverage": 0.99,
                "bytes_coverage": 1.0,
                "overhead_frac": 0.01,
                "optimizations_reported": 4,
                "optimizations_applied": 4,
            },
            "service": {
                "hit_ratio": 0.8,
                "latency_ms": {"p50": 1.0, "p90": 5.0, "p99": 9.0,
                               "mean": 2.0},
            },
        }
        bad = json.loads(json.dumps(good))
        bad["profiler"]["time_coverage"] = 0.5
        bad["profiler"]["overhead_frac"] = 0.2
        bad["profiler"]["optimizations_reported"] = 2
        bad["service"]["hit_ratio"] = 0.1
        bad["service"]["latency_ms"]["p99"] = 100.0
        problems = check_profile_baseline(bad, good)
        text = "\n".join(problems)
        assert "time_coverage" in text
        assert "overhead_frac" in text
        assert "hit_ratio" in text
        assert "p99" in text
        assert "applied optimizations" in text
        assert check_profile_baseline(good, good) == []

    def test_check_missing_baseline_is_an_error(self, tmp_path):
        code, _output = run_cli(
            ["bench", "--sites", "2", "--scale", "0.0003", "--check",
             "--baseline", str(tmp_path / "missing.json"),
             "--output", str(tmp_path / "fresh.json")]
        )
        assert code == 2


SMALL_LOADGEN = [
    "loadgen", "--mix", "cube", "--sites", "2", "--flow-count", "120",
    "--steps", "1,2", "--queries", "4",
]


class TestLoadgen:
    def test_sweep_writes_report_and_checks_itself(self, tmp_path):
        import json

        output = tmp_path / "slo.json"
        code, text = run_cli(SMALL_LOADGEN + ["--output", str(output)])
        assert code == 0
        assert "closed-1w" in text and "closed-2w" in text
        report = json.loads(output.read_text())
        assert report["slo_version"] == 1
        assert len(report["steps"]) == 2
        for step in report["steps"]:
            assert "p99" in step["latency_ms"]
            assert 0.95 <= step["stage_sum_frac"] <= 1.05

        # --check re-measures with the baseline's own config; a generous
        # threshold soaks up small-sample quantile noise.
        code, text = run_cli(
            SMALL_LOADGEN
            + ["--check", "--baseline", str(output), "--threshold", "4.0"]
        )
        assert code == 0
        assert "SLO bars hold" in text

    def test_unparseable_steps_exit_2(self):
        code, _text = run_cli(["loadgen", "--steps", "one,two"])
        assert code == 2

    def test_check_missing_baseline_is_an_error(self, tmp_path):
        code, _text = run_cli(
            SMALL_LOADGEN
            + ["--steps", "1", "--queries", "2", "--check",
               "--baseline", str(tmp_path / "missing.json")]
        )
        assert code == 2


class TestDiffCommand:
    def slo_payload(self, p50=10.0):
        return {
            "slo_version": 1,
            "steps": [
                {
                    "label": "closed-1w",
                    "achieved_qps": 2.0,
                    "hit_ratio": 0.5,
                    "outcomes": {"rejected": 0, "timeout": 0},
                    "latency_ms": {"p50": p50, "p90": p50 * 2, "p99": p50 * 4},
                    "stages_ms": {"execute": {"p50": p50, "p99": p50 * 3}},
                }
            ],
        }

    def write(self, path, payload):
        import json

        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_identical_artifacts_exit_0(self, tmp_path):
        before = self.write(tmp_path / "a.json", self.slo_payload())
        after = self.write(tmp_path / "b.json", self.slo_payload())
        code, text = run_cli(["diff", before, after])
        assert code == 0
        assert "no attributed regressions" in text

    def test_regression_exits_1_and_names_the_cause(self, tmp_path):
        before = self.write(tmp_path / "a.json", self.slo_payload())
        after = self.write(tmp_path / "b.json", self.slo_payload(p50=80.0))
        code, text = run_cli(["diff", before, after])
        assert code == 1
        assert "REGRESSED" in text
        assert "top regression:" in text
        assert "closed-1w" in text

    def test_json_output_round_trips(self, tmp_path):
        import json

        before = self.write(tmp_path / "a.json", self.slo_payload())
        after = self.write(tmp_path / "b.json", self.slo_payload(p50=80.0))
        code, text = run_cli(["diff", before, after, "--json"])
        assert code == 1
        payload = json.loads(text)
        assert payload["kind"] == "slo"
        assert payload["regressions"] >= 1
        assert payload["entries"]

    def test_missing_file_exit_2(self, tmp_path):
        before = self.write(tmp_path / "a.json", self.slo_payload())
        code, _text = run_cli(["diff", before, str(tmp_path / "nope.json")])
        assert code == 2

    def test_kind_mismatch_exit_2(self, tmp_path):
        slo = self.write(tmp_path / "a.json", self.slo_payload())
        bench = self.write(tmp_path / "b.json", {"profiler": {}})
        code, _text = run_cli(["diff", slo, bench])
        assert code == 2

    def test_trace_diffed_against_itself_via_cli(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _text = run_cli(
            ["trace",
             "SELECT NationKey, COUNT(*) AS cnt FROM TPCR GROUP BY NationKey",
             "--sites", "2", "--scale", "0.0002",
             "--emit-trace", str(trace)]
        )
        assert code == 0
        code, text = run_cli(["diff", str(trace), str(trace)])
        assert code == 0
        assert "repro diff [profile]" in text
        assert "no attributed regressions" in text
