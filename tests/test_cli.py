"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.queries.sql import SqlError


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])


class TestDemo:
    def test_demo_runs(self):
        code, output = run_cli(["demo", "--sites", "2", "--scale", "0.0002"])
        assert code == 0
        assert "no optimizations" in output
        assert "all optimizations" in output
        assert "NationKey" in output


class TestSql:
    QUERY = (
        "SELECT NationKey, COUNT(*) AS cnt FROM TPCR GROUP BY NationKey "
        "THEN SELECT MAX(Price) AS top WHERE Price > 0"
    )

    def test_star(self):
        code, output = run_cli(
            ["sql", self.QUERY, "--sites", "2", "--scale", "0.0002"]
        )
        assert code == 0
        assert "syncs=" in output
        assert "cnt" in output

    def test_tree(self):
        code, output = run_cli(
            [
                "sql",
                self.QUERY,
                "--sites",
                "4",
                "--scale",
                "0.0002",
                "--topology",
                "tree:2",
            ]
        )
        assert code == 0
        assert "root-link bytes=" in output

    def test_flows_data(self):
        code, output = run_cli(
            [
                "sql",
                "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS",
                "--data",
                "flows",
                "--sites",
                "2",
                "--scale",
                "0.0001",
            ]
        )
        assert code == 0
        assert "flows" in output

    def test_bad_topology(self):
        code, _output = run_cli(
            ["sql", self.QUERY, "--topology", "ring", "--scale", "0.0002"]
        )
        assert code == 2

    def test_bad_sql_raises(self):
        with pytest.raises(SqlError):
            run_cli(["sql", "SELECT FROM nowhere"])


class TestFigures:
    def test_single_figure(self):
        code, output = run_cli(["figures", "fig2", "--scale", "0.0002"])
        assert code == 0
        assert "Figure 2" in output
        assert "predicted=" in output

    def test_aware_extension(self):
        code, output = run_cli(["figures", "fig2x", "--scale", "0.0002"])
        assert code == 0
        assert "aware" in output

    def test_fig3_and_fig4(self):
        code, output = run_cli(["figures", "fig3", "--scale", "0.0002"])
        assert code == 0
        assert "coalescing" in output
        code, output = run_cli(["figures", "fig4", "--scale", "0.0002"])
        assert code == 0
        assert "synchronization" in output

    def test_fig5(self):
        code, output = run_cli(["figures", "fig5", "--scale", "0.0002"])
        assert code == 0
        assert "scale-up" in output
