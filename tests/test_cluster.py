"""Unit tests for the simulated cluster wiring."""

import pytest

from conftest import make_flows
from repro.distributed.cluster import SimulatedCluster, default_site_ids
from repro.errors import WarehouseError
from repro.warehouse.partition import RoundRobinPartitioner, ValueListPartitioner

FLOW = make_flows(count=80, seed=4)


class TestConstruction:
    def test_with_sites(self):
        cluster = SimulatedCluster.with_sites(3)
        assert cluster.site_count == 3
        assert cluster.site_ids == ("site0", "site1", "site2")
        assert cluster.network.site_ids == cluster.site_ids

    def test_default_site_ids(self):
        assert default_site_ids(2) == ("site0", "site1")

    def test_needs_sites(self):
        with pytest.raises(WarehouseError):
            SimulatedCluster([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(WarehouseError):
            SimulatedCluster(["a", "a"])


class TestLoading:
    def test_load_partitioned_distributes_and_registers(self):
        cluster = SimulatedCluster.with_sites(4)
        partitioner = ValueListPartitioner.spread("SourceAS", range(16), 4)
        cluster.load_partitioned("Flow", FLOW, partitioner)
        total = sum(
            cluster.site(site_id).warehouse.row_count("Flow")
            for site_id in cluster.site_ids
        )
        assert total == len(FLOW)
        assert cluster.catalog.is_registered("Flow")
        assert cluster.catalog.partition_attributes("Flow") == ("SourceAS",)

    def test_load_partitioned_site_count_mismatch(self):
        cluster = SimulatedCluster.with_sites(4)
        with pytest.raises(WarehouseError):
            cluster.load_partitioned("Flow", FLOW, RoundRobinPartitioner(3))

    def test_load_partitioned_subset_of_sites(self):
        cluster = SimulatedCluster.with_sites(4)
        cluster.load_partitioned(
            "Flow", FLOW, RoundRobinPartitioner(2), participating=["site0", "site1"]
        )
        assert cluster.catalog.sites("Flow") == ("site0", "site1")
        assert not cluster.site("site2").warehouse.has_table("Flow")

    def test_load_manual(self):
        cluster = SimulatedCluster.with_sites(2)
        halves = RoundRobinPartitioner(2).split(FLOW)
        cluster.load_manual(
            "Flow",
            {"site0": halves[0], "site1": halves[1]},
            partition_attrs=(),
        )
        assert cluster.conceptual_table("Flow").same_rows(FLOW)

    def test_load_manual_unknown_site(self):
        cluster = SimulatedCluster.with_sites(1)
        with pytest.raises(WarehouseError):
            cluster.load_manual("Flow", {"ghost": FLOW})


class TestViews:
    def test_conceptual_table_is_union(self):
        cluster = SimulatedCluster.with_sites(3)
        cluster.load_partitioned("Flow", FLOW, RoundRobinPartitioner(3))
        assert cluster.conceptual_table("Flow").same_rows(FLOW)

    def test_conceptual_table_missing(self):
        cluster = SimulatedCluster.with_sites(1)
        with pytest.raises(WarehouseError):
            cluster.conceptual_table("Nope")

    def test_conceptual_tables_collects_all(self):
        cluster = SimulatedCluster.with_sites(2)
        cluster.load_partitioned("Flow", FLOW, RoundRobinPartitioner(2))
        tables = cluster.conceptual_tables()
        assert set(tables) == {"Flow"}

    def test_unknown_site_lookup(self):
        with pytest.raises(WarehouseError):
            SimulatedCluster.with_sites(1).site("siteX")

    def test_reset_network_clears_counters(self):
        cluster = SimulatedCluster.with_sites(1)
        from repro.net.message import BASE_QUERY, Message

        cluster.network.channel("site0").send_to_site(
            Message(BASE_QUERY, "coordinator", "site0", 0)
        )
        assert cluster.network.total_bytes() > 0
        cluster.reset_network()
        assert cluster.network.total_bytes() == 0
