"""Unit tests for the GMDJ coalescing transformation (Section 4.3)."""

from conftest import assert_relations_equal, make_flows
from repro.gmdj.blocks import MDBlock
from repro.gmdj.coalesce import can_coalesce, coalesce, coalesce_steps
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail

FLOW = make_flows(count=150, seed=13)
TABLES = {"Flow": FLOW}
KEY = base.SourceAS == detail.SourceAS


def step(outputs, condition, table="Flow"):
    return MDStep(table, [MDBlock([count_star(name) for name in outputs], condition)])


class TestCanCoalesce:
    def test_independent_conditions(self):
        inner = step(["c1"], KEY)
        outer = step(["c2"], KEY & (detail.NumBytes > 100))
        assert can_coalesce(inner, outer)

    def test_correlated_conditions_blocked(self):
        inner = MDStep(
            "Flow",
            [MDBlock([AggSpec("avg", detail.NumBytes, "avg_nb")], KEY)],
        )
        outer = step(["c2"], KEY & (detail.NumBytes >= base.avg_nb))
        assert not can_coalesce(inner, outer)

    def test_different_detail_tables_blocked(self):
        inner = step(["c1"], KEY, table="Flow")
        outer = step(["c2"], KEY, table="Other")
        assert not can_coalesce(inner, outer)

    def test_base_attrs_unrelated_to_inner_are_fine(self):
        inner = step(["c1"], KEY)
        outer = step(["c2"], KEY & (base.SourceAS > 2))
        assert can_coalesce(inner, outer)


class TestCoalesceSteps:
    def test_merges_adjacent(self):
        steps = [step(["a"], KEY), step(["b"], KEY), step(["c"], KEY)]
        merged = coalesce_steps(steps)
        assert len(merged) == 1
        assert merged[0].output_names() == ("a", "b", "c")

    def test_stops_at_correlation(self):
        inner = MDStep(
            "Flow", [MDBlock([AggSpec("avg", detail.NumBytes, "m")], KEY)]
        )
        correlated = step(["c"], KEY & (detail.NumBytes > base.m))
        tail = step(["d"], KEY)
        merged = coalesce_steps([inner, correlated, tail])
        # inner cannot merge with correlated; correlated merges with tail.
        assert len(merged) == 2
        assert merged[1].output_names() == ("c", "d")

    def test_empty(self):
        assert coalesce_steps([]) == []


class TestCoalesceExpression:
    def test_identity_when_nothing_merges(self):
        inner = MDStep(
            "Flow", [MDBlock([AggSpec("avg", detail.NumBytes, "m")], KEY)]
        )
        outer = step(["c"], KEY & (detail.NumBytes > base.m))
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])
        assert coalesce(expression) is expression

    def test_semantics_preserved(self):
        steps = [
            MDStep(
                "Flow",
                [MDBlock([count_star("c1"), AggSpec("sum", detail.NumBytes, "s1")], KEY)],
            ),
            MDStep(
                "Flow",
                [
                    MDBlock(
                        [count_star("c2"), AggSpec("avg", detail.NumBytes, "a2")],
                        KEY & (detail.NumBytes > 500),
                    )
                ],
            ),
        ]
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), steps)
        merged = coalesce(expression)
        assert len(merged.steps) == 1
        assert_relations_equal(
            expression.evaluate_centralized(TABLES),
            merged.evaluate_centralized(TABLES),
        )

    def test_coalesced_is_idempotent(self):
        steps = [step(["a"], KEY), step(["b"], KEY)]
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), steps)
        once = coalesce(expression)
        assert coalesce(once) is once
