"""Columnar storage, batch kernels and the column-block wire codec.

Unit-level coverage for the columnar execution tentpole: the per-column
relation representation (:mod:`repro.relalg.columnar`), the generated
batch kernels (:func:`repro.relalg.compiler.compile_mask` and friends),
the column-array :class:`~repro.relalg.index.HashIndex` build, and the
dictionary+delta column codec in :mod:`repro.net.serialize` — including
seeded property-style round trips over random relations.
"""

import datetime
import random

import pytest

from conftest import brute_force_gmdj, make_flows
from repro.errors import SchemaError, SerializationError
from repro.gmdj import operator
from repro.gmdj.blocks import MDBlock
from repro.net import serialize
from repro.relalg import compiler
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.columnar import Column, ColumnarRelation
from repro.relalg.engine import use_engine
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR, Const, base, col, detail
from repro.relalg.index import HashIndex
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Schema

MIXED_SCHEMA = Schema.of(
    ("i", INT), ("f", FLOAT), ("s", STR), ("b", BOOL), ("d", DATE)
)


def random_mixed_relation(count, seed, null_rate=0.2):
    rng = random.Random(seed)

    def maybe(value):
        return None if rng.random() < null_rate else value

    rows = [
        (
            maybe(rng.randrange(-(2**40), 2**40)),
            maybe(rng.choice([rng.uniform(-1e6, 1e6), 0.0, -0.0, 1e308])),
            maybe(rng.choice(["alpha", "beta", "gamma", "", "naïve—☃"])),
            maybe(rng.random() < 0.5),
            maybe(datetime.date(2000 + rng.randrange(30), 1 + rng.randrange(12), 1 + rng.randrange(28))),
        )
        for _ in range(count)
    ]
    return Relation(MIXED_SCHEMA, rows)


# ---------------------------------------------------------------------------
# Columnar storage
# ---------------------------------------------------------------------------


class TestColumnarRelation:
    def test_round_trip_preserves_rows_and_order(self):
        relation = random_mixed_relation(100, seed=1)
        columnar = ColumnarRelation.from_rows(relation.schema, relation.rows)
        assert columnar.to_rows() == list(relation.rows)
        assert len(columnar) == 100

    def test_relation_to_columnar_is_cached(self):
        relation = random_mixed_relation(10, seed=2)
        assert relation.to_columnar() is relation.to_columnar()

    def test_from_columnar_seeds_the_cache(self):
        relation = random_mixed_relation(10, seed=3)
        columnar = relation.to_columnar()
        rebuilt = Relation.from_columnar(columnar)
        assert rebuilt.rows == relation.rows
        assert rebuilt.to_columnar() is columnar

    def test_gather_selects_rows_by_index(self):
        relation = random_mixed_relation(20, seed=4)
        columnar = relation.to_columnar()
        gathered = columnar.gather([3, 0, 17])
        assert gathered.to_rows() == [
            relation.rows[3], relation.rows[0], relation.rows[17]
        ]

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(
                Schema.of(("a", INT), ("b", INT)),
                [Column("a", INT, [1, 2]), Column("b", INT, [1])],
            )

    def test_column_count_must_match_schema(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(Schema.of(("a", INT)), [])

    def test_zero_column_relation_keeps_length(self):
        columnar = ColumnarRelation.from_rows(Schema.of(), [(), (), ()])
        assert len(columnar) == 3
        assert columnar.to_rows() == [(), (), ()]

    def test_as_array_packs_non_nulls(self):
        column = Column("i", INT, [5, None, -7])
        values, present = column.as_array()
        assert values.typecode == "q"
        assert list(values) == [5, -7]
        assert present == [True, False, True]
        assert column.null_count() == 1

    def test_dictionary_first_appearance_order(self):
        column = Column("s", STR, ["b", "a", None, "b", "c", "a"])
        uniques, codes = column.dictionary()
        assert uniques == ["b", "a", "c"]
        assert list(codes) == [0, 1, -1, 0, 2, 1]


# ---------------------------------------------------------------------------
# Batch kernels
# ---------------------------------------------------------------------------


class TestBatchKernels:
    def test_mask_matches_row_predicate(self):
        relation = random_mixed_relation(200, seed=5)
        condition = (col.i > Const(0)) & (col.f < Const(1e7))
        mask = compiler.compile_mask(
            condition, {None: relation.schema}, (None,), None
        )
        predicate = compiler.compile_predicate(
            condition, {None: relation.schema}, (None,)
        )
        indices = mask(len(relation), relation.to_columnar().value_lists())
        expected = [
            index for index, row in enumerate(relation.rows) if predicate(row)
        ]
        assert indices == expected

    def test_mask_null_comparisons_are_false(self):
        relation = Relation(Schema.of(("i", INT)), [(None,), (1,), (-1,)])
        mask = compiler.compile_mask(
            col.i > Const(0), {None: relation.schema}, (None,), None
        )
        assert mask(3, relation.to_columnar().value_lists()) == [1]

    def test_batch_scalar_matches_row_scalar(self):
        relation = random_mixed_relation(150, seed=6)
        expression = col.i * Const(2) + col.f
        batch = compiler.compile_batch_scalar(
            expression, {None: relation.schema}, (None,), None
        )
        scalar = compiler.compile_scalar(
            expression, {None: relation.schema}, (None,)
        )
        values = batch(len(relation), relation.to_columnar().value_lists())
        assert values == [scalar(row) for row in relation.rows]

    def test_select_and_extend_identical_across_engines(self):
        relation = random_mixed_relation(120, seed=7)
        condition = col.f > Const(0.0)
        expression = col.f * Const(0.5)
        with use_engine("row"):
            row_selected = relation.select(condition)
            row_extended = relation.extend("half", FLOAT, expression)
        with use_engine("columnar"):
            col_selected = relation.select(condition)
            col_extended = relation.extend("half", FLOAT, expression)
        assert col_selected.rows == row_selected.rows
        assert col_extended.rows == row_extended.rows

    def test_theta_join_identical_across_engines(self):
        from repro.relalg.operators import theta_join

        left = Relation(Schema.of(("k", INT)), [(1,), (2,), (None,)])
        right = Relation(
            Schema.of(("k2", INT), ("v", FLOAT)),
            [(1, 10.0), (2, 20.0), (1, 30.0), (None, 40.0)],
        )
        condition = base.k == detail.k2
        with use_engine("row"):
            row_joined = theta_join(left, right, condition)
        with use_engine("columnar"):
            col_joined = theta_join(left, right, condition)
        assert col_joined.rows == row_joined.rows


# ---------------------------------------------------------------------------
# GMDJ differential: columnar vs row vs brute force
# ---------------------------------------------------------------------------


class TestGMDJColumnar:
    def blocks(self):
        return [
            MDBlock(
                [
                    count_star("cnt"),
                    AggSpec("sum", detail.NumBytes, "total"),
                    AggSpec("avg", detail.NumBytes, "mean"),
                    AggSpec("var", detail.NumBytes, "spread"),
                ],
                base.SourceAS == detail.SourceAS,
            ),
            MDBlock(
                [AggSpec("count", detail.NumBytes, "big")],
                (base.SourceAS == detail.SourceAS)
                & (detail.NumBytes > Const(2000.0)),
            ),
        ]

    def test_bit_identical_to_row_engine_and_close_to_brute_force(self):
        flows = make_flows(count=300, seed=31)
        base_relation = flows.distinct_project(["SourceAS"])
        blocks = self.blocks()
        with use_engine("row"):
            row_result = operator.evaluate(base_relation, flows, blocks)
        with use_engine("columnar"):
            columnar_result = operator.evaluate(base_relation, flows, blocks)
        assert columnar_result.rows == row_result.rows  # bit-identical
        brute = brute_force_gmdj(base_relation, flows, blocks)
        assert columnar_result.schema == brute.schema

    def test_holistic_aggregates_fall_back_to_row_path(self):
        flows = make_flows(count=100, seed=32)
        base_relation = flows.distinct_project(["SourceAS"])
        blocks = [
            MDBlock(
                [AggSpec("median", detail.NumBytes, "mid"), count_star("cnt")],
                base.SourceAS == detail.SourceAS,
            )
        ]
        with use_engine("row"):
            row_result = operator.evaluate(base_relation, flows, blocks)
        with use_engine("columnar"):
            columnar_result = operator.evaluate(base_relation, flows, blocks)
        assert columnar_result.rows == row_result.rows

    def test_evaluate_sub_touched_flags_identical(self):
        flows = make_flows(count=200, seed=33)
        base_relation = flows.distinct_project(["SourceAS"])
        blocks = self.blocks()
        with use_engine("row"):
            row_sub, row_touched = operator.evaluate_sub(base_relation, flows, blocks)
        with use_engine("columnar"):
            columnar_sub, columnar_touched = operator.evaluate_sub(
                base_relation, flows, blocks
            )
        assert columnar_sub.rows == row_sub.rows
        assert columnar_touched == row_touched


# ---------------------------------------------------------------------------
# HashIndex builds from columns
# ---------------------------------------------------------------------------


class TestColumnarIndex:
    def test_lookup_matches_row_scan(self):
        relation = random_mixed_relation(80, seed=8, null_rate=0.3)
        index = HashIndex(relation, ["i", "s"])
        for probe_row in relation.rows[:10]:
            key = (probe_row[0], probe_row[2])
            expected = [
                row_index
                for row_index, row in enumerate(relation.rows)
                if (row[0], row[2]) == key
            ]
            assert list(index.lookup(key)) == expected


# ---------------------------------------------------------------------------
# Column-block wire codec
# ---------------------------------------------------------------------------


class TestColumnCodec:
    @pytest.mark.parametrize("seed", range(5))
    def test_property_round_trip_random_relations(self, seed):
        rng = random.Random(seed * 101 + 7)
        relation = random_mixed_relation(
            rng.randrange(0, 200), seed=seed, null_rate=rng.uniform(0, 0.9)
        )
        payload = serialize.encode_relation(relation, "column")
        decoded = serialize.decode_relation(payload)
        assert decoded.schema == relation.schema
        assert decoded.rows == relation.rows

    def test_saves_bytes_on_typical_olap_rows(self):
        flows = make_flows(count=500, seed=9)
        row_bytes = len(serialize.encode_relation(flows, "row"))
        column_bytes = len(serialize.encode_relation(flows, "column"))
        assert column_bytes < row_bytes

    def test_empty_relation_round_trips(self):
        empty = Relation.empty(MIXED_SCHEMA)
        decoded = serialize.decode_relation(
            serialize.encode_relation(empty, "column")
        )
        assert decoded.schema == MIXED_SCHEMA
        assert decoded.rows == []

    def test_all_null_column_round_trips(self):
        relation = Relation(Schema.of(("s", STR)), [(None,)] * 7)
        decoded = serialize.decode_relation(
            serialize.encode_relation(relation, "column")
        )
        assert decoded.rows == relation.rows

    def test_version_byte_dispatches_both_codecs(self):
        relation = random_mixed_relation(20, seed=10)
        for codec in serialize.CODECS:
            payload = serialize.encode_relation(relation, codec)
            assert serialize.decode_relation(payload).rows == relation.rows

    def test_truncated_payload_rejected(self):
        payload = serialize.encode_relation(
            random_mixed_relation(20, seed=11), "column"
        )
        with pytest.raises(SerializationError):
            serialize.decode_relation(payload[:-3])
        with pytest.raises(SerializationError):
            serialize.decode_relation(payload + b"\x00")

    def test_unknown_codec_rejected(self):
        with pytest.raises(SerializationError):
            serialize.encode_relation(random_mixed_relation(1, seed=12), "zstd")
        with pytest.raises(SerializationError):
            serialize.validate_codec("parquet")

    def test_wire_size_matches_encoded_length(self):
        relation = random_mixed_relation(30, seed=13)
        for codec in serialize.CODECS:
            assert serialize.wire_size(relation, codec) == len(
                serialize.encode_relation(relation, codec)
            )


# ---------------------------------------------------------------------------
# Codec edge cases: zero rows and all-null columns, under BOTH codecs
# ---------------------------------------------------------------------------


class TestCodecEdgeCases:
    """Regression net for the degenerate relations the wire must carry.

    Zero-row shipments happen whenever a site holds no qualifying
    fragment for a round, and all-null columns whenever an outer feature
    never fires — both must survive either codec byte-exactly.
    """

    def test_zero_row_relation_round_trips_under_both_codecs(self):
        empty = Relation.empty(MIXED_SCHEMA)
        for codec in serialize.CODECS:
            decoded = serialize.decode_relation(
                serialize.encode_relation(empty, codec)
            )
            assert decoded.schema == MIXED_SCHEMA
            assert decoded.rows == []

    @pytest.mark.parametrize(
        "col_type", [INT, FLOAT, STR, BOOL, DATE],
        ids=["int", "float", "str", "bool", "date"],
    )
    def test_all_null_column_round_trips_under_both_codecs(self, col_type):
        relation = Relation(Schema.of(("v", col_type)), [(None,)] * 9)
        for codec in serialize.CODECS:
            decoded = serialize.decode_relation(
                serialize.encode_relation(relation, codec)
            )
            assert decoded.schema == relation.schema
            assert decoded.rows == relation.rows

    def test_all_null_alongside_populated_columns(self):
        rows = [(index, None, None) for index in range(17)]
        relation = Relation(
            Schema.of(("k", INT), ("s", STR), ("b", BOOL)), rows
        )
        for codec in serialize.CODECS:
            decoded = serialize.decode_relation(
                serialize.encode_relation(relation, codec)
            )
            assert decoded.rows == relation.rows

    def test_empty_string_stays_distinct_from_null(self):
        relation = Relation(
            Schema.of(("s", STR)), [("",), (None,), ("x",), ("",), (None,)]
        )
        for codec in serialize.CODECS:
            decoded = serialize.decode_relation(
                serialize.encode_relation(relation, codec)
            )
            assert decoded.rows == relation.rows

    def test_zero_row_message_round_trips_under_both_codecs(self):
        from repro.net.message import SHIP_BASE, Message

        empty = Relation.empty(MIXED_SCHEMA)
        for codec in serialize.CODECS:
            message = Message.with_relation(
                SHIP_BASE, "coordinator", "site0", 1, empty, codec=codec
            )
            decoded = message.relation()
            assert decoded.schema == MIXED_SCHEMA
            assert decoded.rows == []


# ---------------------------------------------------------------------------
# Bench hooks
# ---------------------------------------------------------------------------


class TestBenchHooks:
    def test_columnar_sweep_reports_identical_and_speedup(self):
        from repro.bench.harness import columnar_sweep

        report = columnar_sweep(detail_rows=4000, repetitions=1)
        for workload in ("cube", "multifeature"):
            assert report[workload]["identical"] is True
            assert report[workload]["columnar_s"] > 0

    def test_check_micro_baseline_flags_lost_vectorization(self):
        from repro.bench.harness import check_micro_baseline

        good = {
            "column": {
                "roundtrip_identical": True,
                "saved_bytes": 100,
                "saving_fraction": 0.4,
            },
            "columnar": {
                "cube": {"identical": True, "speedup": 4.0},
                "multifeature": {"identical": True, "speedup": 4.0},
            },
        }
        baseline = {"column": {"saving_fraction": 0.4}}
        assert check_micro_baseline(good, baseline) == []
        slow = {
            "column": dict(good["column"]),
            "columnar": {
                "cube": {"identical": True, "speedup": 1.0},
                "multifeature": {"identical": True, "speedup": 4.0},
            },
        }
        problems = check_micro_baseline(slow, baseline)
        assert any("cube" in problem for problem in problems)

    def test_estimated_codec_saving_bounded(self):
        from repro.distributed.costing import estimate_column_codec_saving

        assert estimate_column_codec_saving(Schema.of()) == 0.0
        saving = estimate_column_codec_saving(MIXED_SCHEMA)
        assert 0.0 < saving < 1.0
