"""Differential tests: codegen kernels vs the AST interpreter oracle.

The compiled kernels of :mod:`repro.relalg.compiler` share no evaluation
code with :meth:`Expr.eval`; running both over the property-test
expression corpus (random trees, random rows including NULLs) pins down
NULL propagation, NULL comparisons, division by zero, and the lazy
short-circuit behaviour of ``&``/``|``.
"""

import math

import pytest
from hypothesis import given, settings

from test_property_expressions import (
    BASE_SCHEMA,
    DETAIL_SCHEMA,
    _rows,
    condition_exprs,
    numeric_exprs,
)

from repro.relalg.compiler import (
    compile_predicate,
    compile_scalar,
    compile_values,
    kernel_cache_size,
)
from repro.relalg.expressions import (
    BASE_VAR,
    Comparison,
    Const,
    DETAIL_VAR,
    base,
    col,
    detail,
)
from repro.relalg.predicates import conjuncts
from repro.relalg.schema import FLOAT, STR, Schema

_SCHEMAS = {BASE_VAR: BASE_SCHEMA, DETAIL_VAR: DETAIL_SCHEMA}
_PARAMS = (BASE_VAR, DETAIL_VAR)


def _oracle(expression, base_row, detail_row):
    bindings = {
        BASE_VAR: dict(zip(("x", "y"), base_row)),
        DETAIL_VAR: dict(zip(("u", "v"), detail_row)),
    }
    return expression.eval(bindings)


@given(expression=numeric_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=200, deadline=None)
def test_scalar_kernel_matches_interpreter(expression, base_row, detail_row):
    kernel = compile_scalar(expression, _SCHEMAS, _PARAMS)
    interpreted = _oracle(expression, base_row, detail_row)
    compiled = kernel(base_row, detail_row)
    if interpreted is None or compiled is None:
        assert interpreted is None and compiled is None
    elif math.isinf(interpreted) or math.isnan(interpreted):
        assert math.isinf(compiled) or math.isnan(compiled) or compiled == interpreted
    else:
        assert compiled == pytest.approx(interpreted, rel=1e-12, abs=1e-12)


@given(expression=condition_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=200, deadline=None)
def test_predicate_kernel_matches_interpreter(expression, base_row, detail_row):
    kernel = compile_predicate(expression, _SCHEMAS, _PARAMS)
    assert kernel(base_row, detail_row) == bool(
        _oracle(expression, base_row, detail_row)
    )


@given(expression=condition_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=100, deadline=None)
def test_conjunct_list_matches_whole_condition(expression, base_row, detail_row):
    """Splitting into conjuncts then early-exiting is semantics-preserving."""
    whole = compile_predicate(expression, _SCHEMAS, _PARAMS)
    split = compile_predicate(conjuncts(expression), _SCHEMAS, _PARAMS)
    assert whole(base_row, detail_row) == split(base_row, detail_row)


@given(expression=numeric_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=100, deadline=None)
def test_values_kernel_matches_scalars(expression, base_row, detail_row):
    pair = compile_values((expression, expression + 1.0), _SCHEMAS, _PARAMS)
    single = compile_scalar(expression, _SCHEMAS, _PARAMS)
    first, second = pair(base_row, detail_row)
    assert first == single(base_row, detail_row)
    if first is None:
        assert second is None
    else:
        assert second == pytest.approx(first + 1.0)


# ---------------------------------------------------------------------------
# Targeted semantics the corpus cannot reach
# ---------------------------------------------------------------------------

_MIXED = Schema.of(("name", STR), ("score", FLOAT))


def test_and_short_circuits_lazily():
    """The right operand must not be evaluated when the left decides.

    ``name < 5`` is a type error for string names; the interpreter never
    evaluates it when the guard is false, and neither may the kernel.
    """
    guarded = (col.score > 100.0) & (col.name < 5)
    kernel = compile_predicate(guarded, {None: _MIXED}, (None,))
    assert kernel(("alice", 1.0)) is False
    with pytest.raises(TypeError):
        kernel(("alice", 200.0))  # the interpreter raises here too
    with pytest.raises(TypeError):
        guarded.eval({None: {"name": "alice", "score": 200.0}})


def test_or_short_circuits_lazily():
    guarded = (col.score > 100.0) | (col.name < 5)
    kernel = compile_predicate(guarded, {None: _MIXED}, (None,))
    assert kernel(("bob", 200.0)) is True
    with pytest.raises(TypeError):
        kernel(("bob", 1.0))


def test_division_and_modulo_by_zero_yield_null():
    expr = (detail.u / base.x) + (detail.v % base.y)
    kernel = compile_scalar(expr, _SCHEMAS, _PARAMS)
    assert kernel((0.0, 1.0), (3.0, 4.0)) is None  # u / 0
    assert kernel((2.0, 0.0), (3.0, 4.0)) is None  # v % 0
    assert kernel((2.0, 3.0), (4.0, 5.0)) == pytest.approx(4.0)


def test_null_comparisons_are_false_and_between_needs_all_operands():
    condition = detail.u.between(base.x, base.y)
    kernel = compile_predicate(condition, _SCHEMAS, _PARAMS)
    assert kernel((1.0, 5.0), (3.0, 0.0)) is True
    assert kernel((None, 5.0), (3.0, 0.0)) is False
    assert kernel((1.0, 5.0), (None, 0.0)) is False


def test_in_set_never_admits_null():
    kernel = compile_predicate(detail.u.is_in([1.0, 2.0]), _SCHEMAS, _PARAMS)
    assert kernel((0.0, 0.0), (1.0, 9.0)) is True
    assert kernel((0.0, 0.0), (None, 9.0)) is False


def test_aliases_bind_unqualified_fields_to_a_parameter():
    expr = col.u + detail.v
    kernel = compile_scalar(
        expr,
        {DETAIL_VAR: DETAIL_SCHEMA, None: DETAIL_SCHEMA},
        (DETAIL_VAR,),
        aliases={None: DETAIL_VAR},
    )
    assert kernel((2.0, 3.0)) == pytest.approx(5.0)


def test_non_finite_constants_are_not_inlined():
    kernel = compile_scalar(
        Const(float("nan")) + detail.u, _SCHEMAS, _PARAMS
    )
    assert math.isnan(kernel((0.0, 0.0), (1.0, 1.0)))


def test_kernel_cache_reuses_compiled_functions():
    expression = (base.x == detail.u) & (detail.v >= 10.0)
    first = compile_predicate(expression, _SCHEMAS, _PARAMS)
    before = kernel_cache_size()
    second = compile_predicate(expression, _SCHEMAS, _PARAMS)
    assert first is second
    assert kernel_cache_size() == before


def test_kernel_source_is_attached_for_introspection():
    kernel = compile_predicate(base.x > 1.0, _SCHEMAS, _PARAMS)
    assert "def _kernel" in kernel.__kernel_source__
