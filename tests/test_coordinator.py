"""Unit tests for the coordinator's synchronization logic."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed.coordinator import Coordinator
from repro.errors import PlanError
from repro.gmdj import operator
from repro.gmdj.blocks import MDBlock
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation

FLOW = make_flows(count=90, seed=17)
KEY_ATTRS = ["SourceAS"]
BLOCKS = [
    MDBlock(
        [count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")],
        base.SourceAS == detail.SourceAS,
    )
]


def split_three():
    return [Relation(FLOW.schema, FLOW.rows[start::3]) for start in range(3)]


class TestBase:
    def test_uninitialized_access_raises(self):
        coordinator = Coordinator(KEY_ATTRS)
        assert not coordinator.has_base
        with pytest.raises(PlanError):
            coordinator.x

    def test_set_base_literal(self):
        coordinator = Coordinator(KEY_ATTRS)
        relation = FLOW.distinct_project(KEY_ATTRS)
        coordinator.set_base(relation)
        assert coordinator.x is relation

    def test_sync_base_deduplicates(self):
        coordinator = Coordinator(KEY_ATTRS)
        fragments = [piece.distinct_project(KEY_ATTRS) for piece in split_three()]
        merged = coordinator.sync_base(fragments)
        assert merged.same_rows(FLOW.distinct_project(KEY_ATTRS))

    def test_sync_base_empty_list_raises(self):
        with pytest.raises(PlanError):
            Coordinator(KEY_ATTRS).sync_base([])


class TestFragments:
    def test_no_filter_ships_everything(self):
        coordinator = Coordinator(KEY_ATTRS)
        coordinator.set_base(FLOW.distinct_project(KEY_ATTRS))
        assert coordinator.fragment_for_site(None) is coordinator.x

    def test_filter_restricts(self):
        coordinator = Coordinator(KEY_ATTRS)
        coordinator.set_base(FLOW.distinct_project(KEY_ATTRS))
        fragment = coordinator.fragment_for_site(base.SourceAS < 4)
        assert len(fragment) < len(coordinator.x)
        assert all(row[0] < 4 for row in fragment.rows)


class TestSynchronize:
    def test_matches_centralized(self):
        base_relation = FLOW.distinct_project(KEY_ATTRS)
        coordinator = Coordinator(KEY_ATTRS)
        coordinator.set_base(base_relation)
        subs = []
        for piece in split_three():
            h, _touched = operator.evaluate_sub(base_relation, piece, BLOCKS)
            subs.append(h)
        merged = coordinator.synchronize(subs, BLOCKS)
        assert_relations_equal(merged, operator.evaluate(base_relation, FLOW, BLOCKS))

    def test_partial_sub_results_leave_missing_groups_empty(self):
        base_relation = FLOW.distinct_project(KEY_ATTRS)
        coordinator = Coordinator(KEY_ATTRS)
        coordinator.set_base(base_relation)
        piece = split_three()[0]
        h, touched = operator.evaluate_sub(base_relation, piece, BLOCKS)
        # Simulate independent reduction: ship only touched rows.
        reduced = Relation(
            h.schema, [row for row, touch in zip(h.rows, touched) if touch]
        )
        merged = coordinator.synchronize([reduced], BLOCKS)
        assert len(merged) == len(base_relation)
        count_position = merged.schema.position("cnt")
        touched_keys = {row[0] for row in reduced.rows}
        for row in merged.rows:
            if row[0] not in touched_keys:
                assert row[count_position] == 0

    def test_empty_sub_results_raise(self):
        coordinator = Coordinator(KEY_ATTRS)
        coordinator.set_base(FLOW.distinct_project(KEY_ATTRS))
        with pytest.raises(PlanError):
            coordinator.synchronize([], BLOCKS)


class TestAssembleFromChain:
    def test_proposition2_assembly(self):
        base_relation = FLOW.distinct_project(KEY_ATTRS)
        coordinator = Coordinator(KEY_ATTRS)
        subs = []
        for piece in split_three():
            local_base = piece.distinct_project(KEY_ATTRS)
            h, _touched = operator.evaluate_sub(local_base, piece, BLOCKS)
            subs.append(h)
        merged = coordinator.assemble_from_chain(subs, BLOCKS)
        assert_relations_equal(merged, operator.evaluate(base_relation, FLOW, BLOCKS))

    def test_duplicate_groups_across_sites_are_merged(self):
        # Same SourceAS present at two sites: the assembled base must
        # contain it once with combined aggregates (coordinator dedup).
        pieces = split_three()
        shared = {row[1] for row in pieces[0].rows} & {row[1] for row in pieces[1].rows}
        assert shared, "test data must have overlapping SourceAS across pieces"
        coordinator = Coordinator(KEY_ATTRS)
        subs = []
        for piece in pieces[:2]:
            local_base = piece.distinct_project(KEY_ATTRS)
            h, _touched = operator.evaluate_sub(local_base, piece, BLOCKS)
            subs.append(h)
        merged = coordinator.assemble_from_chain(subs, BLOCKS)
        keys = [row[0] for row in merged.rows]
        assert len(keys) == len(set(keys))
        combined = pieces[0].union_all(pieces[1])
        assert_relations_equal(
            merged,
            operator.evaluate(combined.distinct_project(KEY_ATTRS), combined, BLOCKS),
        )
