"""Tests for the cost-based plan chooser."""

from repro.bench.figures import correlated_query, HIGH_CARDINALITY_KEY
from repro.bench.harness import speedup_cluster
from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.distributed import OptimizationOptions, StatisticsStore
from repro.distributed.optimizer import plan_query, plan_query_cost_based

TPCR = generate_tpcr(TPCRConfig(scale=0.0003, seed=17))


def build():
    cluster = speedup_cluster(TPCR, 4, 8)
    statistics = StatisticsStore()
    statistics.register_from_relation("TPCR", cluster.conceptual_table("TPCR"))
    return cluster, statistics


class TestCostBasedPlanning:
    def test_picks_the_optimized_plan_by_default(self):
        cluster, statistics = build()
        expression = correlated_query(HIGH_CARDINALITY_KEY)
        chosen = plan_query_cost_based(expression, cluster.catalog, statistics)
        reference = plan_query(expression, cluster.catalog, OptimizationOptions.all())
        assert chosen.synchronization_count == reference.synchronization_count
        assert chosen.notes == reference.notes

    def test_custom_candidates(self):
        cluster, statistics = build()
        expression = correlated_query(HIGH_CARDINALITY_KEY)
        candidates = {
            "baseline": OptimizationOptions.none(),
            "reductions": OptimizationOptions(False, False, False, True, False),
        }
        chosen = plan_query_cost_based(
            expression, cluster.catalog, statistics, candidates
        )
        # Independent reduction is estimated cheaper than the baseline.
        assert any(md_round.independent_reduction for md_round in chosen.rounds)

    def test_degenerate_single_candidate(self):
        cluster, statistics = build()
        expression = correlated_query(HIGH_CARDINALITY_KEY)
        chosen = plan_query_cost_based(
            expression,
            cluster.catalog,
            statistics,
            {"only": OptimizationOptions.none()},
        )
        assert chosen.synchronization_count == 3
