"""Tests for the plan cost estimator, validated against measured traffic."""

import pytest

from repro.bench.figures import correlated_query, HIGH_CARDINALITY_KEY, LOW_CARDINALITY_KEY
from repro.bench.harness import speedup_cluster
from repro.data.tpcr import TPCRConfig, generate_tpcr
from repro.distributed import (
    OptimizationOptions,
    execute_plan,
    plan_query,
)
from repro.distributed.costing import (
    PlanEstimate,
    StatisticsStore,
    TableStatistics,
    compare_plans,
    estimate_group_count,
    estimate_plan,
)
from repro.errors import CatalogError

TPCR = generate_tpcr(TPCRConfig(scale=0.0005, seed=13))


def build(participating=4):
    cluster = speedup_cluster(TPCR, participating, 8)
    statistics = StatisticsStore()
    statistics.register_from_relation(
        "TPCR", cluster.conceptual_table("TPCR")
    )
    return cluster, statistics


class TestStatisticsStore:
    def test_register_from_relation(self):
        _cluster, statistics = build()
        table_statistics = statistics.get("TPCR")
        assert table_statistics.row_count > 0
        assert table_statistics.cardinality("NationKey") <= 25
        assert table_statistics.cardinality("Ghost") is None

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            StatisticsStore().get("nope")

    def test_manual_registration(self):
        statistics = StatisticsStore()
        statistics.register("T", TableStatistics(100, {"a": 10}))
        assert statistics.has("T")
        assert statistics.get("T").cardinality("a") == 10


class TestGroupCountEstimate:
    def test_single_attribute(self):
        cluster, statistics = build()
        plan = plan_query(
            correlated_query(HIGH_CARDINALITY_KEY),
            cluster.catalog,
            OptimizationOptions.none(),
        )
        estimate = estimate_group_count(plan, statistics)
        actual = len(
            cluster.conceptual_table("TPCR").distinct_project(HIGH_CARDINALITY_KEY)
        )
        assert estimate == actual  # exact statistics -> exact estimate

    def test_capped_by_row_count(self):
        statistics = StatisticsStore()
        statistics.register("T", TableStatistics(50, {"a": 100, "b": 100}))
        from repro.gmdj.blocks import MDBlock
        from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
        from repro.relalg.aggregates import count_star
        from repro.relalg.expressions import base, detail
        from repro.warehouse.catalog import DistributionCatalog

        catalog = DistributionCatalog()
        catalog.register("T", ["s0"])
        expression = GMDJExpression(
            DistinctBase("T", ["a", "b"]),
            [
                MDStep(
                    "T",
                    [
                        MDBlock(
                            [count_star("c")],
                            (base.a == detail.a) & (base.b == detail.b),
                        )
                    ],
                )
            ],
        )
        plan = plan_query(expression, catalog, OptimizationOptions.none())
        assert estimate_group_count(plan, statistics) == 50


class TestAccuracyAgainstMeasurement:
    @pytest.mark.parametrize("keys", [HIGH_CARDINALITY_KEY, LOW_CARDINALITY_KEY])
    @pytest.mark.parametrize(
        "options",
        [OptimizationOptions.none(), OptimizationOptions(False, False, False, True, False)],
        ids=["none", "independent_gr"],
    )
    def test_estimate_within_factor_two(self, keys, options):
        cluster, statistics = build(participating=4)
        plan = plan_query(correlated_query(keys), cluster.catalog, options)
        estimate = estimate_plan(plan, statistics, cluster.catalog)
        result = execute_plan(cluster, plan)
        measured = result.stats.tuples_total
        assert measured > 0
        ratio = estimate.tuples_total / measured
        assert 0.5 < ratio < 2.0, f"estimate {estimate.tuples_total} vs {measured}"

    def test_merged_base_estimate(self):
        cluster, statistics = build(participating=4)
        plan = plan_query(
            correlated_query(HIGH_CARDINALITY_KEY),
            cluster.catalog,
            OptimizationOptions(False, True, False, False, False),
        )
        assert plan.base.merged_into_chain
        estimate = estimate_plan(plan, statistics, cluster.catalog)
        result = execute_plan(cluster, plan)
        ratio = estimate.tuples_total / result.stats.tuples_total
        assert 0.5 < ratio < 2.0


class TestPlanComparison:
    def test_ranking_matches_measurement_order(self):
        cluster, statistics = build(participating=4)
        expression = correlated_query(HIGH_CARDINALITY_KEY)
        plans = {
            "none": plan_query(expression, cluster.catalog, OptimizationOptions.none()),
            "all": plan_query(expression, cluster.catalog, OptimizationOptions.all()),
        }
        ranked = compare_plans(plans, statistics, cluster.catalog)
        assert [name for name, _estimate in ranked] == ["all", "none"]

    def test_bytes_estimate_positive(self):
        cluster, statistics = build()
        plan = plan_query(
            correlated_query(HIGH_CARDINALITY_KEY),
            cluster.catalog,
            OptimizationOptions.none(),
        )
        estimate = estimate_plan(plan, statistics, cluster.catalog)
        assert isinstance(estimate, PlanEstimate)
        assert estimate.bytes_total() > estimate.tuples_total
