"""Unit tests for the IP-flow generator."""

import pytest

from repro.data.flows import (
    FLOW_SCHEMA,
    WEB_PORTS,
    FlowConfig,
    generate_flows,
    router_partitioner,
)
from repro.errors import WarehouseError


class TestGeneration:
    CONFIG = FlowConfig(flow_count=500, seed=5)

    def test_schema_and_validity(self):
        relation = generate_flows(self.CONFIG)
        assert relation.schema == FLOW_SCHEMA
        assert len(relation) == 500
        for row in relation.rows[:50]:
            relation.schema.check_row(row)

    def test_determinism(self):
        assert generate_flows(self.CONFIG).rows == generate_flows(self.CONFIG).rows

    def test_validation(self):
        with pytest.raises(WarehouseError):
            generate_flows(FlowConfig(flow_count=0))
        with pytest.raises(WarehouseError):
            generate_flows(FlowConfig(router_count=0))

    def test_as_pinned_to_router(self):
        relation = generate_flows(self.CONFIG)
        router_position = relation.schema.position("RouterId")
        as_position = relation.schema.position("SourceAS")
        mapping = {}
        for row in relation.rows:
            source_as = row[as_position]
            assert mapping.setdefault(source_as, row[router_position]) == row[router_position]

    def test_unpinned_spreads_as_over_routers(self):
        relation = generate_flows(
            FlowConfig(flow_count=2000, seed=5, as_pinned_to_router=False)
        )
        router_position = relation.schema.position("RouterId")
        as_position = relation.schema.position("SourceAS")
        routers_of_as0 = {
            row[router_position] for row in relation.rows if row[as_position] == 0
        }
        assert len(routers_of_as0) > 1

    def test_time_ordering(self):
        relation = generate_flows(self.CONFIG)
        start = relation.schema.position("StartTime")
        end = relation.schema.position("EndTime")
        for row in relation.rows:
            assert row[end] > row[start]
            assert 0 <= row[start] < self.CONFIG.hours * 3600

    def test_web_fraction(self):
        relation = generate_flows(FlowConfig(flow_count=4000, seed=7, web_fraction=0.6))
        port_position = relation.schema.position("DestPort")
        web = sum(1 for row in relation.rows if row[port_position] in WEB_PORTS)
        assert 0.5 < web / len(relation) < 0.7

    def test_bytes_positive_and_heavy_tailed(self):
        relation = generate_flows(self.CONFIG)
        volumes = relation.column("NumBytes")
        assert all(volume > 0 for volume in volumes)
        mean = sum(volumes) / len(volumes)
        assert max(volumes) > 5 * mean  # heavy tail


class TestPartitioner:
    def test_router_partitioner_matches_config(self):
        config = FlowConfig(flow_count=300, router_count=4, seed=5)
        partitioner = router_partitioner(config)
        partitions = partitioner.split(generate_flows(config))
        assert len(partitions) == 4
        assert sum(len(partition) for partition in partitions) == 300
        assert partitioner.partition_attributes() == ("RouterId",)
