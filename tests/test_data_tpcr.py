"""Unit tests for the TPC-R-style generator."""

import pytest

from repro.data.tpcr import (
    NATION_COUNT,
    TPCR_SCHEMA,
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)
from repro.errors import WarehouseError
from repro.warehouse.catalog import DistributionCatalog


class TestConfig:
    def test_counts_scale(self):
        config = TPCRConfig(scale=0.001)
        assert config.lineitem_count == 6_000
        assert config.customer_count == 100

    def test_fixed_customers(self):
        config = TPCRConfig(scale=0.004, fixed_customers=50)
        assert config.customer_count == 50
        assert config.lineitem_count == 24_000

    def test_minimums(self):
        config = TPCRConfig(scale=1e-9)
        assert config.lineitem_count == 1
        assert config.customer_count == 1

    def test_invalid_scale(self):
        with pytest.raises(WarehouseError):
            generate_tpcr(TPCRConfig(scale=0))


class TestGeneration:
    CONFIG = TPCRConfig(scale=0.0005, seed=42)

    def test_schema_and_validity(self):
        relation = generate_tpcr(self.CONFIG)
        assert relation.schema == TPCR_SCHEMA
        for row in relation.rows[:50]:
            relation.schema.check_row(row)

    def test_determinism(self):
        first = generate_tpcr(self.CONFIG)
        second = generate_tpcr(self.CONFIG)
        assert first.rows == second.rows

    def test_seed_changes_data(self):
        other = generate_tpcr(TPCRConfig(scale=0.0005, seed=43))
        assert other.rows != generate_tpcr(self.CONFIG).rows

    def test_cardinalities(self):
        relation = generate_tpcr(TPCRConfig(scale=0.002, seed=1))
        nations = set(relation.column("NationKey"))
        assert nations <= set(range(NATION_COUNT))
        assert len(nations) == NATION_COUNT
        customers = set(relation.column("CustKey"))
        assert len(customers) <= TPCRConfig(scale=0.002).customer_count
        names = set(relation.column("CustName"))
        assert len(names) == len(customers)  # unique per customer

    def test_custkey_determines_nationkey(self):
        relation = generate_tpcr(self.CONFIG)
        cust_position = relation.schema.position("CustKey")
        nation_position = relation.schema.position("NationKey")
        mapping = {}
        for row in relation.rows:
            cust = row[cust_position]
            nation = row[nation_position]
            assert mapping.setdefault(cust, nation) == nation

    def test_value_ranges(self):
        relation = generate_tpcr(self.CONFIG)
        for quantity in relation.column("Quantity"):
            assert 1 <= quantity <= 50
        for discount in relation.column("Discount"):
            assert 0 <= discount <= 0.10
        for month in relation.column("OrderMonth"):
            assert 1 <= month <= 12
        for region in relation.column("RegionKey"):
            assert 0 <= region <= 4

    def test_low_cardinality_attributes(self):
        relation = generate_tpcr(TPCRConfig(scale=0.005, seed=2))
        assert len(set(relation.column("SuppKey"))) <= 2_000
        assert len(set(relation.column("PartKey"))) <= 4_000


class TestPartitioning:
    def test_nation_partitioner_covers_all_nations(self):
        partitioner = nation_partitioner(8)
        assert set(partitioner.assignment) == set(range(NATION_COUNT))
        assert partitioner.site_count == 8

    def test_split_is_complete(self):
        relation = generate_tpcr(TPCRConfig(scale=0.0005, seed=9))
        partitions = nation_partitioner(4).split(relation)
        assert sum(len(partition) for partition in partitions) == len(relation)

    def test_fds_make_customer_attrs_partition_attrs(self):
        catalog = DistributionCatalog()
        catalog.register("TPCR", ["s0"], partition_attrs=["NationKey"])
        register_tpcr_fds(catalog)
        attrs = set(catalog.partition_attributes("TPCR"))
        assert {"NationKey", "CustKey", "CustName"} <= attrs
