"""Trace-diff regression attribution (`repro diff` / repro.obs.diff).

The two contracts the PR pins: an artifact diffed against itself
reports zero attributed delta and no verdicts, and a genuine slowdown
is attributed to the dimension that caused it (the loadgen self-test
covers the injected-operator case end to end).
"""

import json

import pytest

from repro.bench.loadgen import build_query_pool
from repro.data.flows import FlowConfig, generate_flows, router_partitioner
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
)
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, Tracer, build_profile, build_trace
from repro.obs.diff import (
    IMPROVED,
    REGRESSED,
    UNCHANGED,
    DiffEntry,
    diff_artifacts,
    diff_bench,
    diff_profiles,
    diff_slo,
    load_artifact,
    render_diff,
)


def build_cluster(sites: int = 2, flow_count: int = 120) -> SimulatedCluster:
    config = FlowConfig(flow_count=flow_count, router_count=sites)
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned(
        "Flow", generate_flows(config), router_partitioner(config)
    )
    return cluster


def traced_run(cluster, expression):
    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    result = execute_query(
        cluster,
        expression,
        OptimizationOptions.none(),
        tracer=tracer,
        metrics=registry,
        query_id=1,
    )
    return tracer, registry, result


@pytest.fixture(scope="module")
def profile_dict():
    cluster = build_cluster()
    _name, expression = build_query_pool("cube")[0]
    tracer, _registry, result = traced_run(cluster, expression)
    return build_profile(tracer.finished(), result.stats, query_id=1).to_dict()


# ---------------------------------------------------------------------------
# Verdict math
# ---------------------------------------------------------------------------


class TestDiffEntry:
    def test_jitter_below_slack_is_unchanged(self):
        entry = DiffEntry("total", "query", "wall_s", 1.0, 1.004)
        assert entry.verdict() == UNCHANGED

    def test_large_relative_move_regresses(self):
        # +100% on 0.1s clears 10% * 0.1 + 5ms slack.
        entry = DiffEntry("total", "query", "wall_s", 0.1, 0.2)
        assert entry.verdict() == REGRESSED
        assert entry.worse_by() == pytest.approx(0.1)

    def test_symmetric_improvement(self):
        entry = DiffEntry("total", "query", "wall_s", 0.2, 0.1)
        assert entry.verdict() == IMPROVED

    def test_small_absolute_move_on_tiny_base_is_noise(self):
        # 4ms of jitter on a 1ms operator is not a 400% regression.
        entry = DiffEntry("operator", "x", "seconds", 0.001, 0.005)
        assert entry.verdict() == UNCHANGED

    def test_higher_is_better_metrics_invert_direction(self):
        dropped = DiffEntry(
            "total", "s1", "hit_ratio", 0.5, 0.2,
            unit="hit_ratio", higher_is_worse=False,
        )
        assert dropped.verdict() == REGRESSED
        # A few flipped outcomes per step stay inside the 0.15 slack.
        racy = DiffEntry(
            "total", "s1", "hit_ratio", 0.5, 0.4,
            unit="hit_ratio", higher_is_worse=False,
        )
        assert racy.verdict() == UNCHANGED

    def test_severity_ranks_relative_movement(self):
        small_base = DiffEntry("operator", "merge", "seconds", 0.02, 0.1)
        large_base = DiffEntry("total", "query", "wall_s", 1.0, 1.08)
        assert small_base.severity() > large_base.severity()

    def test_to_dict_carries_verdict(self):
        entry = DiffEntry("total", "query", "wall_s", 0.1, 0.2)
        as_dict = entry.to_dict()
        assert as_dict["verdict"] == REGRESSED
        assert as_dict["delta"] == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# Profile diffs
# ---------------------------------------------------------------------------


class TestProfileDiff:
    def test_self_diff_reports_zero(self, profile_dict):
        diff = diff_profiles(profile_dict, profile_dict)
        assert diff.kind == "profile"
        assert diff.attributed_delta_s == 0.0
        assert diff.regressions() == []
        assert diff.improvements() == []
        assert diff.top_regression() is None
        assert all(
            entry.verdict(diff.threshold) == UNCHANGED
            for entry in diff.entries
        )

    def test_profile_entries_cover_the_attribution_dimensions(
        self, profile_dict
    ):
        diff = diff_profiles(profile_dict, profile_dict)
        dimensions = {entry.dimension for entry in diff.entries}
        assert {"total", "round", "site", "operator"} <= dimensions

    def test_total_slowdown_is_attributed(self, profile_dict):
        slowed = json.loads(json.dumps(profile_dict))
        slowed["wall_s"] = profile_dict["wall_s"] * 3.0 + 1.0
        diff = diff_profiles(profile_dict, slowed)
        top = diff.top_regression()
        assert top is not None
        assert (top.dimension, top.key, top.metric) == (
            "total", "query", "wall_s",
        )
        assert diff.attributed_delta_s > 0.0


# ---------------------------------------------------------------------------
# SLO / bench diffs
# ---------------------------------------------------------------------------


def slo_step(label, p50=10.0, p99=20.0, hit=0.5, qps=2.0, rejected=0):
    return {
        "label": label,
        "achieved_qps": qps,
        "hit_ratio": hit,
        "outcomes": {"rejected": rejected, "timeout": 0},
        "latency_ms": {"p50": p50, "p90": (p50 + p99) / 2, "p99": p99},
        "stages_ms": {"execute": {"p50": p50 * 0.8, "p99": p99 * 0.8}},
    }


class TestSloDiff:
    def test_self_diff_reports_zero(self):
        report = {"steps": [slo_step("s1"), slo_step("s2")]}
        diff = diff_slo(report, report)
        assert diff.kind == "slo"
        assert diff.regressions() == []
        assert diff.attributed_delta_s == 0.0

    def test_latency_regression_is_attributed_to_its_step(self):
        before = {"steps": [slo_step("s1"), slo_step("s2")]}
        after = {"steps": [slo_step("s1"), slo_step("s2", p50=40.0, p99=80.0)]}
        diff = diff_slo(before, after)
        assert all(entry.key.startswith("s2") for entry in diff.regressions())
        assert any(
            entry.metric == "latency_p50" for entry in diff.regressions()
        )

    def test_admission_rejections_count_as_regressions(self):
        before = {"steps": [slo_step("s1")]}
        after = {"steps": [slo_step("s1", rejected=4)]}
        diff = diff_slo(before, after)
        assert any(entry.metric == "rejected" for entry in diff.regressions())

    def test_steps_are_matched_by_label_with_zero_fill(self):
        before = {"steps": [slo_step("s1")]}
        after = {"steps": [slo_step("s1"), slo_step("s3")]}
        diff = diff_slo(before, after)
        keys = {entry.key for entry in diff.entries}
        assert "s1" in keys and "s3" in keys


class TestBenchDiff:
    def report(self, overhead=0.01, p50=5.0, profile=None):
        report = {
            "profiler": {
                "overhead_frac": overhead,
                "time_coverage": 0.99,
                "bytes_coverage": 1.0,
            },
            "service": {
                "hit_ratio": 0.5,
                "latency_ms": {
                    "p50": p50, "p90": p50 * 2, "p99": p50 * 4,
                    "mean": p50,
                },
            },
        }
        if profile is not None:
            report["profile"] = profile
        return report

    def test_self_diff_reports_zero(self):
        report = self.report()
        diff = diff_bench(report, report)
        assert diff.kind == "bench"
        assert diff.regressions() == []

    def test_recurses_into_embedded_profile(self, profile_dict):
        diff = diff_bench(
            self.report(profile=profile_dict),
            self.report(profile=profile_dict),
        )
        assert any(entry.dimension == "operator" for entry in diff.entries)

    def test_service_latency_regression(self):
        diff = diff_bench(self.report(), self.report(p50=50.0))
        assert any(
            entry.metric == "latency_p50" for entry in diff.regressions()
        )


# ---------------------------------------------------------------------------
# Artifact loading + the file-level entry point
# ---------------------------------------------------------------------------


class TestArtifacts:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_classification(self, tmp_path):
        slo = self.write(tmp_path, "slo.json", {"slo_version": 1, "steps": []})
        bench = self.write(tmp_path, "bench.json", {"profiler": {}})
        profile = self.write(tmp_path, "profile.json", {"rounds": []})
        assert load_artifact(slo)[0] == "slo"
        assert load_artifact(bench)[0] == "bench"
        assert load_artifact(profile)[0] == "profile"

    def test_garbage_is_rejected(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_text("not json at all {", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="neither"):
            load_artifact(str(path))
        unclassifiable = self.write(tmp_path, "what.json", {"foo": 1})
        with pytest.raises(ObservabilityError, match="classify"):
            load_artifact(unclassifiable)
        not_object = self.write(tmp_path, "list.json", [1, 2])
        with pytest.raises(ObservabilityError, match="JSON object"):
            load_artifact(not_object)

    def test_kind_mismatch_is_rejected(self, tmp_path):
        slo = self.write(tmp_path, "slo.json", {"slo_version": 1, "steps": []})
        bench = self.write(tmp_path, "bench.json", {"profiler": {}})
        with pytest.raises(ObservabilityError, match="cannot diff"):
            diff_artifacts(slo, bench)

    def test_trace_diffed_against_itself_is_zero(self, tmp_path):
        cluster = build_cluster()
        _name, expression = build_query_pool("cube")[0]
        tracer, registry, result = traced_run(cluster, expression)
        log = build_trace(tracer, registry, result.stats, query_id=1)
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        log.dump(before)
        log.dump(after)
        diff = diff_artifacts(str(before), str(after), query_id=1)
        assert diff.kind == "profile"
        assert diff.attributed_delta_s == 0.0
        assert diff.regressions() == []
        assert "no attributed regressions" in render_diff(diff)


class TestRendering:
    def test_render_names_the_top_regression(self, profile_dict):
        slowed = json.loads(json.dumps(profile_dict))
        slowed["wall_s"] = profile_dict["wall_s"] * 3.0 + 1.0
        rendered = render_diff(diff_profiles(profile_dict, slowed))
        assert "series compared" in rendered
        assert "REGRESSED" in rendered
        assert "top regression: total query wall_s" in rendered
