"""Tests for the distributed cube / marginal executors."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster
from repro.queries import (
    cube_single_expression,
    execute_cube_distributed,
    execute_marginals_distributed,
    grand_total_expression,
)
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import detail
from repro.warehouse.partition import HashPartitioner, RoundRobinPartitioner

FLOW = make_flows(count=240, seed=111)
DIMS = ["RouterId", "DestAS"]
AGGS = [count_star("flows"), AggSpec("avg", detail.NumBytes, "avg_nb")]


def build_cluster(partitioner=None):
    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned(
        "Flow", FLOW, partitioner or HashPartitioner(["SourceAS"], 4)
    )
    return cluster


class TestGrandTotalExpression:
    def test_single_row_all_data(self):
        cluster = build_cluster()
        from repro.distributed import execute_query

        expression = grand_total_expression("Flow", AGGS)
        result = execute_query(cluster, expression, OptimizationOptions.none())
        assert len(result.relation) == 1
        row = result.relation.row_dict(0)
        assert row["flows"] == len(FLOW)
        expected_avg = sum(FLOW.column("NumBytes")) / len(FLOW)
        assert row["avg_nb"] == pytest.approx(expected_avg)

    def test_optimizations_do_not_change_it(self):
        cluster = build_cluster()
        from repro.distributed import execute_query

        expression = grand_total_expression("Flow", AGGS)
        plain = execute_query(cluster, expression, OptimizationOptions.none())
        cluster.reset_network()
        optimized = execute_query(cluster, expression, OptimizationOptions.all())
        assert_relations_equal(plain.relation, optimized.relation)


class TestDistributedCube:
    def test_matches_single_expression_cube(self):
        cluster = build_cluster()
        cube = execute_cube_distributed(
            cluster, "Flow", DIMS, AGGS, OptimizationOptions.all()
        )
        conceptual = cluster.conceptual_table("Flow")
        reference = cube_single_expression(
            conceptual, "Flow", DIMS, AGGS
        ).evaluate_centralized({"Flow": conceptual})
        assert_relations_equal(cube, reference)

    def test_round_robin_partitioning(self):
        cluster = build_cluster(RoundRobinPartitioner(4))
        cube = execute_cube_distributed(
            cluster, "Flow", ["RouterId"], AGGS, OptimizationOptions.none()
        )
        # 1 dim: distinct routers + the ALL row.
        routers = len(FLOW.distinct_project(["RouterId"]))
        assert len(cube) == routers + 1

    def test_all_cell_present_once(self):
        cluster = build_cluster()
        cube = execute_cube_distributed(
            cluster, "Flow", DIMS, AGGS, OptimizationOptions.all()
        )
        all_rows = [
            row for row in cube.rows if row[0] is None and row[1] is None
        ]
        assert len(all_rows) == 1
        assert all_rows[0][2] == len(FLOW)


class TestDistributedMarginals:
    def test_stacks_all_attributes(self):
        cluster = build_cluster()
        marginals = execute_marginals_distributed(
            cluster, "Flow", DIMS, AGGS, OptimizationOptions.all()
        )
        attributes = {row[0] for row in marginals.rows}
        assert attributes == set(DIMS)
        router_rows = [row for row in marginals.rows if row[0] == "RouterId"]
        assert sum(row[2] for row in router_rows) == len(FLOW)
