"""Executable documentation: the README quickstart must actually run."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def extract_python_blocks(text: str) -> list:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_runs(self, capsys):
        blocks = extract_python_blocks(README.read_text())
        assert blocks, "README lost its quickstart code block"
        namespace: dict = {}
        exec(compile(blocks[0], str(README), "exec"), namespace)  # noqa: S102
        output = capsys.readouterr().out
        assert "NationKey" in output
        assert "round" in output.lower()

    def test_shell_examples_reference_real_files(self):
        text = README.read_text()
        repo = README.parent
        for match in re.findall(r"python (benchmarks/\S+\.py|examples/\S+\.py)", text):
            assert (repo / match).exists(), f"README references missing {match}"

    def test_module_init_quickstart_runs(self, capsys):
        import repro

        blocks = re.findall(r"(?s)Quickstart::\n\n(.*?)(?:\n\"\"\"|\Z)", repro.__doc__ + '"""')
        assert blocks
        code = "\n".join(
            line[4:] if line.startswith("    ") else line
            for line in blocks[0].splitlines()
        )
        namespace: dict = {}
        exec(compile(code, "repro.__doc__", "exec"), namespace)  # noqa: S102
        assert "NationKey" in capsys.readouterr().out
