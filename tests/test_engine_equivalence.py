"""Row/columnar engine equivalence: the differential-oracle contract.

The columnar engine (vectorized batch kernels, ``--engine columnar``)
must be *bit-identical* to the row engine — same rows in the same order,
float folds included — on every query family the repo reproduces (cube,
multifeature, unpivot), under every executor, under both wire codecs,
and while the recovery machinery is retrying faulty legs. The row engine
is never removed: it is the oracle these tests diff against.
"""

import pytest

from conftest import make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.stats import verify_against_network
from repro.errors import PlanError
from repro.net.faults import FaultPlan
from repro.queries import (
    Feature,
    combine_lattice_results,
    combine_marginals,
    cube_lattice_queries,
    grand_total_expression,
    marginal_queries,
    multifeature_query,
)
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.engine import active_engine, use_engine
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import HashPartitioner

EXECUTORS = ("serial", "threads", "processes")
AGGS = [count_star("cnt"), AggSpec("sum", detail.NumBytes, "total")]


def build_cluster(site_count=3, faults=None):
    cluster = SimulatedCluster.with_sites(site_count)
    cluster.load_partitioned(
        "Flow",
        make_flows(count=300, seed=23, routers=site_count),
        HashPartitioner(["SourceAS"], site_count),
    )
    if faults is not None:
        cluster.install_faults(FaultPlan.parse(faults))
    return cluster


def config_for(engine, executor="serial", wire_codec="row", **kwargs):
    kwargs.setdefault("retry_backoff_s", 0.0)
    return ExecutionConfig(
        executor=executor, engine=engine, wire_codec=wire_codec, **kwargs
    )


def run_expression(expression, config, cluster=None, **cluster_kwargs):
    cluster = cluster or build_cluster(**cluster_kwargs)
    result = execute_query(
        cluster, expression, OptimizationOptions.all(), config=config
    )
    assert verify_against_network(result.stats, cluster.network) == []
    return result


def cube_rows(config):
    """The full cube lattice + grand total, evaluated distributed."""
    cluster = build_cluster()
    results = {}
    for subset, expression in cube_lattice_queries(
        "Flow", ["SourceAS", "DestAS"], AGGS
    ):
        results[subset] = run_expression(expression, config, cluster).relation
        cluster.reset_network()
    total = run_expression(
        grand_total_expression("Flow", AGGS), config, cluster
    ).relation
    grand_total = total.project([spec.output for spec in AGGS])
    cube = combine_lattice_results(
        ["SourceAS", "DestAS"], AGGS, results, grand_total
    )
    return cube.rows


def multifeature_rows(config):
    """A two-feature cascade whose second feature correlates on the first."""
    expression = multifeature_query(
        "Flow",
        ["SourceAS"],
        [
            Feature([AggSpec("min", detail.NumBytes, "lo"), count_star("cnt")]),
            Feature(
                [AggSpec("sum", detail.NumBytes, "near_lo")],
                when=detail.NumBytes <= base.lo * 2.0,
            ),
        ],
    )
    return run_expression(expression, config).relation.rows


def unpivot_rows(config):
    """Marginals over both AS attributes, stacked."""
    cluster = build_cluster()
    attributes = ["SourceAS", "DestAS"]
    results = {}
    for attribute, expression in marginal_queries("Flow", attributes, AGGS):
        results[attribute] = run_expression(expression, config, cluster).relation
        cluster.reset_network()
    return combine_marginals(attributes, AGGS, results).rows


FAMILIES = {
    "cube": cube_rows,
    "multifeature": multifeature_rows,
    "unpivot": unpivot_rows,
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("executor", EXECUTORS)
def test_columnar_bit_identical_per_family_and_executor(family, executor):
    run = FAMILIES[family]
    oracle = run(config_for("row", executor="serial"))
    columnar = run(config_for("columnar", executor=executor))
    assert columnar == oracle  # bit-identical, order included


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_column_codec_does_not_change_any_family(family):
    run = FAMILIES[family]
    oracle = run(config_for("row", wire_codec="row"))
    for engine in ("row", "columnar"):
        assert run(config_for(engine, wire_codec="column")) == oracle


@pytest.mark.parametrize("executor", ("serial", "threads"))
def test_columnar_engine_survives_fault_retry_bit_identical(executor):
    expression = multifeature_query(
        "Flow",
        ["SourceAS"],
        [Feature([count_star("cnt"), AggSpec("sum", detail.NumBytes, "total")])],
    )
    clean = run_expression(
        expression, config_for("row", executor="serial")
    ).relation.rows
    faults = "drop site=site1 round=1 dir=up times=1"
    for engine in ("row", "columnar"):
        for codec in ("row", "column"):
            cluster = build_cluster(faults=faults)
            retried = run_expression(
                expression,
                config_for(
                    engine,
                    executor=executor,
                    wire_codec=codec,
                    failure_mode="retry",
                    max_retries=3,
                ),
                cluster,
            )
            assert retried.relation.rows == clean
            assert retried.stats.retries >= 1


def test_codec_saving_is_reported_and_positive():
    expression = multifeature_query(
        "Flow", ["SourceAS"], [Feature(AGGS)]
    )
    result = run_expression(
        expression, config_for("columnar", wire_codec="column")
    )
    stats = result.stats
    assert stats.wire_codec == "column"
    assert stats.row_equiv_bytes_total > stats.bytes_total
    assert stats.codec_saved_bytes > 0
    snapshot = stats.to_dict()
    assert snapshot["wire_codec"] == "column"
    assert snapshot["codec_saved_bytes"] == stats.codec_saved_bytes
    round_codecs = [
        record["codec"] for record in snapshot["rounds"] if "codec" in record
    ]
    assert round_codecs and all(
        entry["wire_codec"] == "column" for entry in round_codecs
    )
    assert "wire codec [column]" in stats.summary()


def test_row_codec_stats_stay_unchanged():
    expression = multifeature_query("Flow", ["SourceAS"], [Feature(AGGS)])
    snapshot = run_expression(
        expression, config_for("row", wire_codec="row")
    ).stats.to_dict()
    assert snapshot["wire_codec"] == "row"
    assert "codec_saved_bytes" not in snapshot
    assert all("codec" not in record for record in snapshot["rounds"])


def test_unknown_engine_and_codec_are_rejected():
    with pytest.raises(PlanError):
        ExecutionConfig(engine="gpu")
    with pytest.raises(PlanError):
        ExecutionConfig(wire_codec="parquet")


def test_use_engine_restores_previous_engine():
    ambient = active_engine()  # honours $REPRO_ENGINE, defaults to "row"
    with use_engine("columnar"):
        assert active_engine() == "columnar"
        with use_engine("row"):
            assert active_engine() == "row"
        assert active_engine() == "columnar"
    assert active_engine() == ambient
