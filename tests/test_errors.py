"""Tests for the exception hierarchy and error messages."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            klass = getattr(errors, name)
            if isinstance(klass, type) and issubclass(klass, Exception):
                assert issubclass(klass, errors.ReproError) or klass is errors.ReproError

    def test_specific_parents(self):
        assert issubclass(errors.UnknownAttributeError, errors.SchemaError)
        assert issubclass(errors.TypeMismatchError, errors.SchemaError)
        assert issubclass(errors.HolisticAggregateError, errors.AggregateError)
        assert issubclass(errors.OptimizationError, errors.PlanError)

    def test_catching_the_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.NetworkError("down")

    def test_unknown_attribute_message_lists_available(self):
        error = errors.UnknownAttributeError("ghost", ["a", "b"])
        assert "ghost" in str(error)
        assert "a" in str(error)
        assert error.attribute == "ghost"
        assert error.available == ("a", "b")

    def test_unknown_attribute_without_candidates(self):
        error = errors.UnknownAttributeError("ghost")
        assert "available" not in str(error)


class TestErrorsSurfaceAtBoundaries:
    """Spot checks that library boundaries raise the documented types."""

    def test_schema_boundary(self):
        from repro.relalg.schema import Schema

        with pytest.raises(errors.UnknownAttributeError):
            Schema.of("a").position("z")

    def test_expression_boundary(self):
        from repro.relalg.expressions import col

        with pytest.raises(errors.ExpressionError):
            col.a.compile({})  # no schema for the relvar

    def test_aggregate_boundary(self):
        from repro.relalg.aggregates import AggSpec

        with pytest.raises(errors.AggregateError):
            AggSpec("mode", None, "m")

    def test_serialization_boundary(self):
        from repro.net.serialize import decode_relation

        with pytest.raises(errors.SerializationError):
            decode_relation(b"garbage")

    def test_plan_boundary(self):
        from repro.distributed.coordinator import Coordinator

        with pytest.raises(errors.PlanError):
            Coordinator(["k"]).x

    def test_warehouse_boundary(self):
        from repro.warehouse.storage import LocalWarehouse

        with pytest.raises(errors.WarehouseError):
            LocalWarehouse("w").table("missing")

    def test_catalog_boundary(self):
        from repro.warehouse.catalog import DistributionCatalog

        with pytest.raises(errors.CatalogError):
            DistributionCatalog().phi("missing", "s0")

    def test_network_boundary(self):
        from repro.net.channel import Network

        with pytest.raises(errors.NetworkError):
            Network(["s0"]).channel("s9")

    def test_sql_boundary(self):
        from repro.queries.sql import SqlError, parse_olap_query

        with pytest.raises(SqlError):
            parse_olap_query("SELEKT")
        assert issubclass(SqlError, errors.ReproError)
