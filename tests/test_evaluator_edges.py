"""Edge cases of distributed evaluation: degenerate clusters and data."""

import pytest

from conftest import assert_relations_equal, make_flows, FLOW_TEST_SCHEMA
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
)
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=120, seed=131)
KEY = base.SourceAS == detail.SourceAS


def expression():
    step = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])


OPTIONS = [OptimizationOptions.none(), OptimizationOptions.all()]


class TestDegenerateClusters:
    @pytest.mark.parametrize("options", OPTIONS, ids=["none", "all"])
    def test_single_site(self, options):
        cluster = SimulatedCluster.with_sites(1)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 1)
        )
        reference = expression().evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression(), options)
        assert_relations_equal(reference, result.relation)

    @pytest.mark.parametrize("options", OPTIONS, ids=["none", "all"])
    def test_site_with_empty_partition(self, options):
        # Assign every value to sites 0..2; site 3 holds an empty table.
        partitioner = ValueListPartitioner(
            "SourceAS", {value: value % 3 for value in range(16)}, 4
        )
        cluster = SimulatedCluster.with_sites(4)
        cluster.load_partitioned("Flow", FLOW, partitioner)
        assert cluster.site("site3").warehouse.row_count("Flow") == 0
        reference = expression().evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression(), options)
        assert_relations_equal(reference, result.relation)

    @pytest.mark.parametrize("options", OPTIONS, ids=["none", "all"])
    def test_completely_empty_table(self, options):
        empty = Relation.empty(FLOW_TEST_SCHEMA)
        cluster = SimulatedCluster.with_sites(3)
        cluster.load_partitioned(
            "Flow", empty, ValueListPartitioner.spread("SourceAS", range(16), 3)
        )
        result = execute_query(cluster, expression(), options)
        assert len(result.relation) == 0

    @pytest.mark.parametrize("options", OPTIONS, ids=["none", "all"])
    def test_one_row_table(self, options):
        one = Relation(FLOW_TEST_SCHEMA, [FLOW.rows[0]])
        cluster = SimulatedCluster.with_sites(2)
        cluster.load_partitioned(
            "Flow", one, ValueListPartitioner.spread("SourceAS", range(16), 2)
        )
        reference = expression().evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression(), options)
        assert_relations_equal(reference, result.relation)
        assert len(result.relation) == 1


class TestConditionEdges:
    @pytest.mark.parametrize("options", OPTIONS, ids=["none", "all"])
    def test_always_false_condition(self, options):
        step = MDStep(
            "Flow", [MDBlock([count_star("cnt")], KEY & (detail.NumBytes < 0))]
        )
        query = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])
        cluster = SimulatedCluster.with_sites(3)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 3)
        )
        result = execute_query(cluster, query, options)
        assert all(row[-1] == 0 for row in result.relation.rows)
        reference = query.evaluate_centralized(cluster.conceptual_tables())
        assert_relations_equal(reference, result.relation)

    def test_division_by_zero_in_condition_is_safe(self):
        # A zero count in the denominator must disqualify, not crash.
        from repro.queries.olap import QueryBuilder

        query = (
            QueryBuilder("Flow", ["SourceAS"])
            .stage(
                [AggSpec("count", detail.NumBytes, "zeroable")],
                extra=detail.NumBytes < 0,  # all-zero counts
            )
            .stage(
                [count_star("ratio_hits")],
                extra=detail.NumBytes / base.zeroable > 1,
            )
            .build()
        )
        cluster = SimulatedCluster.with_sites(2)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 2)
        )
        result = execute_query(cluster, query, OptimizationOptions.all())
        assert all(row[-1] == 0 for row in result.relation.rows)
