"""Integration tests: Alg. GMDJDistribEval against centralized evaluation.

The core correctness claim of the paper (Theorem 3) is that the
distributed algorithm computes the same result as centralized GMDJ
evaluation, for every combination of optimizations, under any
partitioning. These tests sweep that matrix.
"""

import itertools

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    execute_plan,
    execute_query,
    plan_query,
)
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, LiteralBase, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema
from repro.warehouse.partition import (
    HashPartitioner,
    RoundRobinPartitioner,
    ValueListPartitioner,
)

FLOW = make_flows(count=300, seed=33)
KEY2 = (base.SourceAS == detail.SourceAS) & (base.DestAS == detail.DestAS)
KEY1 = base.SourceAS == detail.SourceAS


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("sum", detail.NumBytes, "s")], KEY2)],
    )
    outer = MDStep(
        "Flow",
        [MDBlock([count_star("big")], KEY2 & (detail.NumBytes >= base.s / base.cnt))],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS", "DestAS"]), [inner, outer])


def single_step_expression():
    step = MDStep(
        "Flow",
        [
            MDBlock(
                [
                    count_star("cnt"),
                    AggSpec("avg", detail.NumBytes, "m"),
                    AggSpec("min", detail.NumBytes, "lo"),
                    AggSpec("max", detail.NumBytes, "hi"),
                    AggSpec("var", detail.NumBytes, "v"),
                ],
                KEY1,
            )
        ],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])


def three_step_expression():
    first = MDStep("Flow", [MDBlock([count_star("c1")], KEY1)])
    second = MDStep(
        "Flow", [MDBlock([AggSpec("avg", detail.NumBytes, "m2")], KEY1 & (detail.DestAS < 4))]
    )
    third = MDStep(
        "Flow",
        [MDBlock([count_star("c3")], KEY1 & (detail.NumBytes >= base.m2))],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [first, second, third])


PARTITIONERS = {
    "value_list": lambda n: ValueListPartitioner.spread("SourceAS", range(16), n),
    "hash": lambda n: HashPartitioner(["SourceAS"], n),
    "round_robin": lambda n: RoundRobinPartitioner(n),
}

EXPRESSIONS = {
    "single": single_step_expression,
    "correlated": correlated_expression,
    "three_step": three_step_expression,
}

OPTION_SETS = {
    "none": OptimizationOptions.none(),
    "all": OptimizationOptions.all(),
    "coalesce_only": OptimizationOptions(
        coalescing=True,
        sync_reduction=False,
        aware_group_reduction=False,
        independent_group_reduction=False,
        site_pruning=False,
    ),
    "sync_only": OptimizationOptions(
        coalescing=False,
        sync_reduction=True,
        aware_group_reduction=False,
        independent_group_reduction=False,
        site_pruning=False,
    ),
    "reductions_only": OptimizationOptions(
        coalescing=False,
        sync_reduction=False,
        aware_group_reduction=True,
        independent_group_reduction=True,
        site_pruning=False,
    ),
}


def build_cluster(partitioner_name: str, sites: int) -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned("Flow", FLOW, PARTITIONERS[partitioner_name](sites))
    return cluster


@pytest.mark.parametrize("partitioner_name", sorted(PARTITIONERS))
@pytest.mark.parametrize("expression_name", sorted(EXPRESSIONS))
@pytest.mark.parametrize("options_name", sorted(OPTION_SETS))
def test_distributed_matches_centralized(partitioner_name, expression_name, options_name):
    cluster = build_cluster(partitioner_name, 4)
    expression = EXPRESSIONS[expression_name]()
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    result = execute_query(cluster, expression, OPTION_SETS[options_name])
    assert_relations_equal(reference, result.relation)
    assert result.respects_theorem2()


@pytest.mark.parametrize("sites", [1, 2, 5])
def test_site_count_sweep(sites):
    cluster = build_cluster("value_list", sites)
    expression = correlated_expression()
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    for options in (OptimizationOptions.none(), OptimizationOptions.all()):
        result = execute_query(cluster, expression, options)
        assert_relations_equal(reference, result.relation)


class TestPlanShapes:
    def test_sync_reduction_single_round(self):
        cluster = build_cluster("value_list", 4)
        result = execute_query(
            cluster, correlated_expression(), OPTION_SETS["sync_only"]
        )
        assert result.plan.synchronization_count == 1
        assert result.stats.round_count == 1

    def test_no_opts_rounds_equal_steps_plus_base(self):
        cluster = build_cluster("value_list", 4)
        result = execute_query(
            cluster, correlated_expression(), OptimizationOptions.none()
        )
        assert result.stats.round_count == 3  # base + 2 MD rounds
        assert result.plan.synchronization_count == 3

    def test_hash_partitioning_still_chains(self):
        # Corollary 1 needs only the partition-attribute property, which
        # hash partitioning provides even without phi predicates.
        cluster = build_cluster("hash", 4)
        result = execute_query(
            cluster, correlated_expression(), OPTION_SETS["sync_only"]
        )
        assert result.stats.round_count == 1

    def test_round_robin_cannot_chain(self):
        cluster = build_cluster("round_robin", 4)
        result = execute_query(
            cluster, correlated_expression(), OPTION_SETS["sync_only"]
        )
        # Proposition 2 still merges the base; Corollary 1 cannot chain.
        assert result.stats.round_count == 2

    def test_reductions_cut_traffic(self):
        cluster = build_cluster("value_list", 4)
        expression = correlated_expression()
        plain = execute_query(cluster, expression, OptimizationOptions.none())
        cluster.reset_network()
        reduced = execute_query(cluster, expression, OPTION_SETS["reductions_only"])
        assert reduced.stats.bytes_total < plain.stats.bytes_total

    def test_aware_reduction_cuts_down_leg(self):
        cluster = build_cluster("value_list", 4)
        expression = single_step_expression()
        plain = execute_query(cluster, expression, OptimizationOptions.none())
        cluster.reset_network()
        aware_only = OptimizationOptions(
            coalescing=False,
            sync_reduction=False,
            aware_group_reduction=True,
            independent_group_reduction=False,
            site_pruning=False,
        )
        aware = execute_query(cluster, expression, aware_only)
        assert aware.stats.bytes_down < plain.stats.bytes_down
        assert_relations_equal(aware.relation, plain.relation)


class TestLiteralBase:
    def test_literal_base_with_foreign_groups(self):
        cluster = build_cluster("value_list", 4)
        literal = Relation(
            Schema.of(("SourceAS", INT),), [(0,), (1,), (2,), (999,)]
        )
        step = MDStep(
            "Flow", [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY1)]
        )
        expression = GMDJExpression(LiteralBase(literal, ["SourceAS"]), [step])
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        for options_name, options in OPTION_SETS.items():
            cluster.reset_network()
            result = execute_query(cluster, expression, options)
            assert_relations_equal(reference, result.relation), options_name
        by_key = {row[0]: row for row in result.relation.rows}
        assert by_key[999][1] == 0
        assert by_key[999][2] is None


class TestChannelsConsistency:
    def test_stats_match_network_counters(self):
        cluster = build_cluster("value_list", 4)
        result = execute_query(
            cluster, correlated_expression(), OptimizationOptions.none()
        )
        down, up = cluster.network.bytes_by_direction()
        assert result.stats.bytes_down + result.stats.round_count * 0 <= down
        # Channel totals include the header-only BASE_QUERY requests that
        # stats attribute to bytes_down as well; they must agree exactly.
        assert result.stats.bytes_down == down
        assert result.stats.bytes_up == up


class TestPlanReuse:
    def test_execute_plan_directly(self):
        cluster = build_cluster("value_list", 4)
        expression = correlated_expression()
        plan = plan_query(expression, cluster.catalog, OptimizationOptions.all())
        first = execute_plan(cluster, plan)
        cluster.reset_network()
        second = execute_plan(cluster, plan)
        assert_relations_equal(first.relation, second.relation)
