"""Executor equivalence: serial / threads / processes are indistinguishable.

The parallel engines (:mod:`repro.distributed.executor`) must not change
*what* is computed, only how fast: for every cluster size and executor
the final relation must be bit-identical (same rows in the same order —
the per-source accumulator banks make float folds order-independent),
the per-round per-site byte accounting must match exactly (the Theorem-2
bound is checked against these numbers), and the trace must contain the
same span *set* (order may differ — legs finish when they finish).
"""

from collections import Counter

import pytest

from conftest import make_flows
from repro.distributed import SimulatedCluster, execute_query
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.stats import verify_against_network
from repro.errors import PlanError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import HashPartitioner

EXECUTORS = ("serial", "threads", "processes")
SITE_COUNTS = (1, 4, 8)

FLOW = make_flows(count=240, seed=17, routers=8)
KEY1 = base.SourceAS == detail.SourceAS
KEY2 = (base.SourceAS == detail.SourceAS) & (base.DestAS == detail.DestAS)


def single_step_expression():
    step = MDStep(
        "Flow",
        [
            MDBlock(
                [
                    count_star("cnt"),
                    AggSpec("sum", detail.NumBytes, "total"),
                    AggSpec("avg", detail.NumBytes, "mean"),
                ],
                KEY1,
            )
        ],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("sum", detail.NumBytes, "s")], KEY2)],
    )
    outer = MDStep(
        "Flow",
        [MDBlock([count_star("big")], KEY2 & (detail.NumBytes >= base.s / base.cnt))],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS", "DestAS"]), [inner, outer])


def run(expression, site_count, executor, row_block_size=0):
    cluster = SimulatedCluster.with_sites(site_count)
    cluster.load_partitioned(
        "Flow", FLOW, HashPartitioner(["SourceAS"], site_count)
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    cluster.reset_network(metrics)
    config = ExecutionConfig(executor=executor, row_block_size=row_block_size)
    result = execute_query(
        cluster, expression, config=config, tracer=tracer, metrics=metrics
    )
    assert verify_against_network(result.stats, cluster.network) == []
    return result, tracer, metrics


def observable_state(result, tracer, metrics):
    """Everything an executor must not change, in comparable form."""
    round_bytes = [
        (
            round_stats.index,
            round_stats.kind,
            tuple(
                sorted(
                    (site_id, site.bytes_down, site.bytes_up, site.tuples_up)
                    for site_id, site in round_stats.sites.items()
                )
            ),
        )
        for round_stats in result.stats.rounds
    ]
    span_set = Counter(
        (span.name, span.kind, span.attributes.get("site"))
        for span in tracer.spans
    )
    counters = {
        name: metrics.value_of(name)
        for name in ("gmdj.tuples_examined", "gmdj.tuples_emitted")
    }
    return result.relation.rows, round_bytes, span_set, counters


@pytest.mark.parametrize("site_count", SITE_COUNTS)
@pytest.mark.parametrize(
    "make_expression", [single_step_expression, correlated_expression]
)
def test_executors_are_observationally_identical(site_count, make_expression):
    expression = make_expression()
    rows, round_bytes, span_set, counters = observable_state(
        *run(expression, site_count, "serial")
    )
    for executor in EXECUTORS[1:]:
        o_rows, o_bytes, o_spans, o_counters = observable_state(
            *run(make_expression(), site_count, executor)
        )
        assert o_rows == rows, f"{executor}: result rows differ"
        assert o_bytes == round_bytes, f"{executor}: byte accounting differs"
        assert o_spans == span_set, f"{executor}: trace span set differs"
        assert o_counters == counters, f"{executor}: operator counters differ"


@pytest.mark.parametrize("executor", EXECUTORS)
def test_row_blocking_composes_with_executors(executor):
    """Blocked shipping (streaming absorb) stays equivalent in parallel."""
    whole, _tracer, _metrics = run(single_step_expression(), 4, executor)
    blocked, _tracer, _metrics = run(
        single_step_expression(), 4, executor, row_block_size=3
    )
    assert blocked.relation.rows == whole.relation.rows
    # Blocking moves more header bytes, never fewer payload tuples.
    assert blocked.stats.tuples_up == whole.stats.tuples_up
    assert blocked.stats.bytes_total >= whole.stats.bytes_total


@pytest.mark.parametrize("executor", EXECUTORS)
def test_stats_record_the_executor(executor):
    result, _tracer, _metrics = run(single_step_expression(), 1, executor)
    assert result.stats.executor == executor
    assert result.stats.wall_time_s() > 0.0
    assert result.respects_theorem2()


def test_unknown_executor_is_rejected():
    with pytest.raises(PlanError):
        ExecutionConfig(executor="fibers")
    with pytest.raises(PlanError):
        ExecutionConfig(max_workers=-1)
