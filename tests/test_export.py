"""Prometheus exposition, the /metrics endpoint, and the repro-top consumer."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    prometheus_text,
    scrape,
    start_metrics_server,
)
from repro.obs.export import sanitize_name, split_key
from repro.obs.top import (
    latency_quantiles_ms,
    outcome_counts,
    render_top,
    site_bytes,
    stage_quantiles_ms,
    summarize,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("net.bytes", direction="down", site="site0").inc(32)
    registry.counter("net.bytes", direction="up", site="site0").inc(200)
    registry.counter("service.queries").inc(3)
    registry.gauge("service.in_flight").set(1)
    histogram = registry.histogram("service.latency_s", boundaries=(0.1, 1.0))
    for value in (0.05, 0.1, 0.5, 5.0):
        histogram.observe(value)
    return registry


class TestExposition:
    def test_sanitize_name(self):
        assert sanitize_name("net.bytes") == "net_bytes"
        assert sanitize_name("9lives") == "_9lives"

    def test_split_key_inverts_metric_key(self):
        assert split_key("net.bytes{direction=down,site=site0}") == (
            "net.bytes",
            {"direction": "down", "site": "site0"},
        )
        assert split_key("service.queries") == ("service.queries", {})

    def test_counters_gain_total_suffix_and_labels(self):
        text = prometheus_text(populated_registry())
        assert (
            'net_bytes_total{direction="down",site="site0"} 32' in text
        )
        assert "# TYPE net_bytes counter" in text
        assert "service_queries_total 3" in text
        assert "service_in_flight 1" in text
        assert "# TYPE service_in_flight gauge" in text

    def test_histogram_buckets_are_cumulative_le(self):
        text = prometheus_text(populated_registry())
        # 0.05 and the exactly-at-boundary 0.1 are both <= 0.1.
        assert 'service_latency_s_bucket{le="0.1"} 2' in text
        assert 'service_latency_s_bucket{le="1"} 3' in text
        assert 'service_latency_s_bucket{le="+Inf"} 4' in text
        assert "service_latency_s_count 4" in text

    def test_type_mixing_is_rejected(self):
        # "x.y" and "x_y" sanitize to the same exposition family; a
        # counter and a gauge cannot share it.
        registry = MetricsRegistry()
        registry.counter("x.y").inc()
        registry.gauge("x_y").set(1)
        with pytest.raises(ObservabilityError, match="mixes types"):
            prometheus_text(registry)

    def test_parse_round_trip(self):
        registry = populated_registry()
        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples["service_queries_total"] == [({}, 3.0)]
        by_le = {
            labels["le"]: value
            for labels, value in samples["service_latency_s_bucket"]
        }
        assert by_le == {"0.1": 2.0, "1": 3.0, "+Inf": 4.0}

    def test_parse_rejects_garbage_with_line_number(self):
        with pytest.raises(ObservabilityError, match="line 2"):
            parse_prometheus_text("ok_metric 1\n{{{nonsense\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c').inc()
        text = prometheus_text(registry)
        samples = parse_prometheus_text(text)
        assert samples["c_total"][0][0]["path"] == 'a"b\\c'


class TestMetricsServer:
    def test_live_scrape_on_ephemeral_port(self):
        registry = populated_registry()
        with start_metrics_server(registry, port=0) as server:
            samples = scrape(server.url)
            assert samples["service_queries_total"] == [({}, 3.0)]
            # Live writers show up on the next scrape.
            registry.counter("service.queries").inc()
            assert scrape(server.url)["service_queries_total"] == [({}, 4.0)]
            # /healthz answers a JSON liveness document; unknown paths
            # 404 without killing the server.
            import json
            import urllib.error
            import urllib.request

            from repro.obs.events import SCHEMA_VERSION

            health = server.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health, timeout=5) as response:
                assert response.headers["Content-Type"].startswith(
                    "application/json"
                )
                body = json.loads(response.read())
            assert body["status"] == "ok"
            assert body["uptime_s"] >= 0.0
            assert body["trace_schema_version"] == SCHEMA_VERSION
            assert body["metric_count"] == len(registry)
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/nope"), timeout=5
                )


class TestTopConsumer:
    def test_summarize_and_quantiles(self):
        samples = parse_prometheus_text(prometheus_text(populated_registry()))
        summary = summarize(samples)
        assert summary["queries"] == 3.0
        assert summary["in_flight"] == 1.0
        assert summary["site_bytes"] == {"site0": {"down": 32, "up": 200}}
        latency = summary["latency_ms"]
        assert latency["count"] == 4
        assert latency["p50"] == pytest.approx(100.0)  # 2 of 4 obs <= 0.1s
        assert latency["p99"] == pytest.approx(1000.0)  # overflow clamps to 1s
        assert latency["mean"] == pytest.approx(5.65 / 4 * 1000.0)

    def test_site_bytes_ignores_unlabelled_series(self):
        samples = {"net_bytes_total": [({"direction": "down"}, 10.0)]}
        assert site_bytes(samples) == {}

    def test_latency_quantiles_empty_without_histogram(self):
        assert latency_quantiles_ms({}) == {}

    def test_stage_panel_separates_labelled_series(self):
        registry = MetricsRegistry()
        lookup = registry.histogram(
            "service.stage_s", boundaries=(0.1, 1.0), stage="lookup"
        )
        for value in (0.05, 0.05):
            lookup.observe(value)
        registry.histogram(
            "service.stage_s", boundaries=(0.1, 1.0), stage="execute"
        ).observe(0.5)
        registry.histogram(
            "service.latency_by_outcome_s", boundaries=(0.1,), outcome="hit"
        ).observe(0.01)
        registry.histogram(
            "service.latency_by_outcome_s", boundaries=(0.1,), outcome="fresh"
        ).observe(0.5)
        samples = parse_prometheus_text(prometheus_text(registry))

        stages = stage_quantiles_ms(samples)
        # Canonical lifecycle order, and each stage sees only its own
        # label's observations (the label-blind sum would report 3).
        assert list(stages) == ["lookup", "execute"]
        assert stages["lookup"]["count"] == 2
        assert stages["execute"]["count"] == 1
        assert stages["lookup"]["p50"] <= stages["execute"]["p50"]
        assert outcome_counts(samples) == {"hit": 1, "fresh": 1}

        summary = summarize(samples)
        assert summary["stages_ms"] == stages
        frame = render_top(summary)
        assert "stages:" in frame
        assert "lookup" in frame and "execute" in frame
        assert "outcomes: fresh=1 hit=1" in frame

    def test_stage_panel_placeholder_before_traffic(self):
        frame = render_top(summarize({}))
        assert "no service.stage_s samples yet" in frame

    def test_render_top_frame(self):
        samples = parse_prometheus_text(prometheus_text(populated_registry()))
        frame = render_top(summarize(samples), "http://x/metrics", 3)
        assert "repro top — http://x/metrics (frame 3)" in frame
        assert "queries=3" in frame
        assert "p50=100.0ms" in frame
        assert "site0" in frame

    def test_render_top_before_any_traffic(self):
        frame = render_top(summarize({}))
        assert "no service.latency_s samples yet" in frame
        assert "no net.bytes samples yet" in frame

    def test_top_loop_returns_1_when_unreachable(self):
        import io

        from repro.obs.top import top_loop

        out = io.StringIO()
        code = top_loop(
            "http://127.0.0.1:1/metrics",
            interval_s=0.0,
            iterations=2,
            out=out,
            sleep=lambda _s: None,
        )
        assert code == 1
        assert "unreachable" in out.getvalue()


class TestServerLifecycle:
    def test_stop_is_idempotent_and_joins_the_thread(self):
        server = start_metrics_server(populated_registry(), port=0)
        assert server._thread.is_alive()
        server.stop()
        assert not server._thread.is_alive()
        server.stop()  # second stop is a no-op, not an error
        server.close()  # and close() stays as an alias

    def test_port_is_rebindable_immediately_after_stop(self):
        # The EADDRINUSE regression: serve teardown must release the
        # fixed --metrics-port so a quick restart can bind it again.
        first = start_metrics_server(populated_registry(), port=0)
        port = first.port
        first.stop()
        second = start_metrics_server(populated_registry(), port=port)
        try:
            assert second.port == port
            assert scrape(second.url)["service_queries_total"] == [({}, 3.0)]
        finally:
            second.stop()

    def test_server_sets_so_reuseaddr(self):
        from repro.obs.export import _ReusableHTTPServer

        assert _ReusableHTTPServer.allow_reuse_address is True
