"""Unit tests for the scalar expression AST."""

import pytest

from repro.errors import ExpressionError
from repro.relalg.expressions import (
    BASE_VAR,
    DETAIL_VAR,
    And,
    Arith,
    Between,
    Comparison,
    Const,
    Expr,
    Field,
    InSet,
    IsNull,
    Neg,
    Not,
    Or,
    and_all,
    base,
    col,
    detail,
    expr_equals,
    or_all,
    rebind,
    rename_fields,
    wrap,
)
from repro.relalg.schema import FLOAT, INT, Schema


def evaluate(expression, **rows):
    """Evaluate with keyword relvars; ``r_`` maps to detail, ``b_`` to base."""
    bindings = {}
    for key, value in rows.items():
        bindings[{"b": BASE_VAR, "r": DETAIL_VAR, "u": None}[key]] = value
    return expression.eval(bindings)


class TestBuilders:
    def test_namespace_builds_fields(self):
        field = base.SourceAS
        assert isinstance(field, Field)
        assert field.relvar == BASE_VAR
        assert field.name == "SourceAS"
        assert detail.X.relvar == DETAIL_VAR
        assert col.X.relvar is None

    def test_namespace_getitem(self):
        assert base["weird name"].name == "weird name"

    def test_wrap_constants(self):
        assert isinstance(wrap(5), Const)
        wrapped = wrap(Const(5))
        assert isinstance(wrapped, Const)

    def test_operator_overloads_build_nodes(self):
        assert isinstance(col.a + 1, Arith)
        assert isinstance(col.a == col.b, Comparison)
        assert isinstance((col.a > 1) & (col.b < 2), And)
        assert isinstance((col.a > 1) | (col.b < 2), Or)
        assert isinstance(~(col.a > 1), Not)
        assert isinstance(-col.a, Neg)
        assert isinstance(col.a.is_in([1, 2]), InSet)
        assert isinstance(col.a.between(0, 1), Between)
        assert isinstance(col.a.is_null(), IsNull)

    def test_reflected_operators(self):
        assert evaluate(1 + col.a, u={"a": 2}) == 3
        assert evaluate(10 - col.a, u={"a": 4}) == 6
        assert evaluate(3 * col.a, u={"a": 4}) == 12
        assert evaluate(8 / col.a, u={"a": 4}) == 2

    def test_truthiness_is_an_error(self):
        with pytest.raises(ExpressionError):
            bool(col.a == col.b)

    def test_field_requires_name(self):
        with pytest.raises(ExpressionError):
            Field("")


class TestEvaluation:
    def test_arithmetic(self):
        expression = (col.a + col.b) * 2 - col.a / 2
        assert evaluate(expression, u={"a": 4, "b": 1}) == 8.0

    def test_modulo(self):
        assert evaluate(col.a % 3, u={"a": 7}) == 1

    def test_arithmetic_null_propagates(self):
        assert evaluate(col.a + 1, u={"a": None}) is None
        assert evaluate(-col.a, u={"a": None}) is None

    def test_division_by_zero_is_null(self):
        assert evaluate(col.a / col.b, u={"a": 1, "b": 0}) is None
        assert evaluate(col.a % col.b, u={"a": 1, "b": 0}) is None
        # ... and the null disqualifies any comparison built on it.
        assert evaluate(col.a / col.b > 0, u={"a": 1, "b": 0}) is False

    def test_division_by_zero_compiled(self):
        from repro.relalg.schema import Schema, FLOAT

        schema = Schema.of(("a", FLOAT), ("b", FLOAT))
        func = (col.a / col.b).compile({None: schema})
        assert func({None: (1.0, 0.0)}) is None
        assert func({None: (1.0, 2.0)}) == 0.5

    def test_comparison_null_is_false(self):
        assert evaluate(col.a > 1, u={"a": None}) is False
        assert evaluate(col.a == col.a, u={"a": None}) is False

    def test_comparisons(self):
        row = {"a": 2, "b": 3}
        assert evaluate(col.a < col.b, u=row)
        assert evaluate(col.a <= 2, u=row)
        assert evaluate(col.b >= 3, u=row)
        assert evaluate(col.a != col.b, u=row)
        assert not evaluate(col.a == col.b, u=row)

    def test_boolean_connectives(self):
        row = {"a": 1}
        assert evaluate((col.a == 1) & (col.a < 2), u=row)
        assert evaluate((col.a == 9) | (col.a == 1), u=row)
        assert evaluate(~(col.a == 9), u=row)

    def test_in_set(self):
        assert evaluate(col.a.is_in([1, 2]), u={"a": 2})
        assert not evaluate(col.a.is_in([1, 2]), u={"a": 3})
        assert not evaluate(col.a.is_in([1, 2]), u={"a": None})

    def test_between(self):
        assert evaluate(col.a.between(1, 3), u={"a": 2})
        assert evaluate(col.a.between(1, 3), u={"a": 3})
        assert not evaluate(col.a.between(1, 3), u={"a": 4})
        assert not evaluate(col.a.between(1, 3), u={"a": None})

    def test_is_null(self):
        assert evaluate(col.a.is_null(), u={"a": None})
        assert not evaluate(col.a.is_null(), u={"a": 0})

    def test_cross_relvar_condition(self):
        theta = (base.k == detail.k) & (detail.v > base.threshold)
        assert evaluate(theta, b={"k": 1, "threshold": 5}, r={"k": 1, "v": 6})
        assert not evaluate(theta, b={"k": 1, "threshold": 5}, r={"k": 2, "v": 6})

    def test_missing_binding_raises(self):
        with pytest.raises(ExpressionError):
            (base.k == detail.k).eval({BASE_VAR: {"k": 1}})


class TestCompile:
    def test_compile_matches_eval(self):
        base_schema = Schema.of(("k", INT), ("t", FLOAT))
        detail_schema = Schema.of(("k", INT), ("v", FLOAT))
        theta = (base.k == detail.k) & (detail.v >= base.t * 2)
        compiled = theta.compile({BASE_VAR: base_schema, DETAIL_VAR: detail_schema})
        cases = [
            ((1, 2.0), (1, 4.0), True),
            ((1, 2.0), (1, 3.0), False),
            ((1, 2.0), (2, 9.0), False),
            ((1, None), (1, 4.0), False),
        ]
        for base_row, detail_row, expected in cases:
            assert compiled({BASE_VAR: base_row, DETAIL_VAR: detail_row}) is expected
            bindings = {
                BASE_VAR: dict(zip(("k", "t"), base_row)),
                DETAIL_VAR: dict(zip(("k", "v"), detail_row)),
            }
            assert theta.eval(bindings) is expected

    def test_compile_null_arith(self):
        schema = Schema.of(("a", FLOAT),)
        func = (col.a * 2).compile({None: schema})
        assert func({None: (None,)}) is None

    def test_compile_unknown_relvar_raises(self):
        with pytest.raises(ExpressionError):
            base.k.compile({DETAIL_VAR: Schema.of("k")})

    def test_compile_all_node_kinds(self):
        schema = Schema.of(("a", FLOAT),)
        expressions = [
            col.a.between(0, 10),
            col.a.is_in([1.0]),
            col.a.is_null(),
            ~(col.a > 0),
            -col.a,
            (col.a > 0) | (col.a < -5),
        ]
        for expression in expressions:
            compiled = expression.compile({None: schema})
            for value in (1.0, -10.0, None):
                bound = compiled({None: (value,)})
                direct = expression.eval({None: {"a": value}})
                assert bound == direct


class TestStructural:
    def test_expr_equals(self):
        assert expr_equals(base.a + 1, base.a + 1)
        assert not expr_equals(base.a + 1, base.a + 2)
        assert not expr_equals(base.a, detail.a)

    def test_key_is_hashable(self):
        mapping = {(base.a == detail.a).key(): "x"}
        assert mapping[(base.a == detail.a).key()] == "x"

    def test_fields_and_relvars(self):
        theta = (base.k == detail.k) & (detail.v > 1)
        names = {(field.relvar, field.name) for field in theta.fields()}
        assert names == {(BASE_VAR, "k"), (DETAIL_VAR, "k"), (DETAIL_VAR, "v")}
        assert theta.relvars() == frozenset([BASE_VAR, DETAIL_VAR])

    def test_attrs_filtered_by_relvar(self):
        theta = (base.k == detail.j) & (detail.v > 1)
        assert theta.attrs(BASE_VAR) == frozenset(["k"])
        assert theta.attrs(DETAIL_VAR) == frozenset(["j", "v"])
        assert theta.attrs() == frozenset(["k", "j", "v"])

    def test_comparison_mirrored_and_negated(self):
        comparison = base.a < detail.b
        mirrored = comparison.mirrored()
        assert mirrored.op == ">"
        assert expr_equals(mirrored.left, detail.b)
        negated = comparison.negated()
        assert negated.op == ">="

    def test_rebind(self):
        theta = (base.k == detail.k) & (detail.v > 1)
        rebound = rebind(theta, {BASE_VAR: None})
        assert rebound.attrs(None) == frozenset(["k"])
        assert rebound.attrs(DETAIL_VAR) == frozenset(["k", "v"])

    def test_rename_fields(self):
        theta = (base.k == detail.k) & (base.v > 1)
        renamed = rename_fields(theta, BASE_VAR, {"k": "key"})
        assert renamed.attrs(BASE_VAR) == frozenset(["key", "v"])
        assert renamed.attrs(DETAIL_VAR) == frozenset(["k"])


class TestConjunctionHelpers:
    def test_and_all_empty_is_true(self):
        assert and_all([]).eval({}) is True

    def test_or_all_empty_is_false(self):
        assert or_all([]).eval({}) is False

    def test_and_all(self):
        expression = and_all([col.a > 0, col.a < 10])
        assert evaluate(expression, u={"a": 5})
        assert not evaluate(expression, u={"a": 50})

    def test_or_all(self):
        expression = or_all([col.a == 1, col.a == 2])
        assert evaluate(expression, u={"a": 2})
        assert not evaluate(expression, u={"a": 3})


class TestRepr:
    def test_reprs_are_readable(self):
        assert repr(base.k) == "b.k"
        assert repr(col.k) == "k"
        assert "BETWEEN" in repr(col.a.between(1, 2))
        assert "IN" in repr(col.a.is_in([1]))
        assert "IS NULL" in repr(col.a.is_null())
