"""Fault injection, retry/degradation, and failure-path regressions.

Covers the recovery subsystem end to end: the FaultPlan spec formats and
FaultyChannel semantics per fault kind, message/bookkeeper validation,
the evaluator's fail_fast / retry / degrade modes (including the
acceptance scenario: drop + crash-for-two-rounds on one of four sites),
engine equivalence under a seeded fault schedule, and the executor
failure-path bugfixes (all failed sites reported, no leaked pools).
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from conftest import make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.executor import ProcessEngine, SerialEngine, ThreadEngine
from repro.distributed.recovery import EXCLUDED, RetryPolicy, guard_leg
from repro.distributed.stats import RoundStats, verify_against_network
from repro.errors import (
    FaultSpecError,
    MultiLegError,
    NetworkError,
    PlanError,
    RetryExhaustedError,
    SerializationError,
    SiteUnavailableError,
)
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.net import serialize
from repro.net.channel import Network
from repro.net.faults import (
    FaultEvent,
    FaultPlan,
    FaultRule,
    FaultyChannel,
    corrupt_payload,
)
from repro.net.message import BASE_QUERY, HEADER_BYTES, SUB_RESULT, Message
from repro.obs.tracer import NULL_TRACER
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema
from repro.warehouse.partition import HashPartitioner

# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def test_dsl_parses_rules_and_round_ranges():
    plan = FaultPlan.parse(
        "drop site=site1 round=1 dir=up; crash site=site1 rounds=1-2 times=4"
    )
    assert len(plan) == 2
    drop, crash = plan.rules
    assert (drop.kind, drop.site, drop.rounds, drop.direction, drop.times) == (
        "drop", "site1", (1,), "up", 1
    )
    assert (crash.kind, crash.rounds, crash.times) == ("crash", (1, 2), 4)


def test_json_and_file_specs_roundtrip(tmp_path):
    plan = FaultPlan.parse("delay site=s0 round=2 dir=down delay=0.5; duplicate")
    text = __import__("json").dumps(plan.to_dicts())
    assert FaultPlan.parse(text).rules == plan.rules

    path = tmp_path / "faults.json"
    path.write_text(text, encoding="utf-8")
    assert FaultPlan.load(str(path)).rules == plan.rules
    assert FaultPlan.from_any(str(path)).rules == plan.rules
    assert FaultPlan.from_any("corrupt site=s1").rules == (
        FaultRule("corrupt", site="s1"),
    )


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "explode site=s0",
        "drop round=oops",
        "drop rounds=5-2",
        "drop times=-1",
        "drop site",
        "drop dir=sideways",
        "[{\"site\": \"s0\"}]",
        "[{\"kind\": \"drop\", \"sideways\": 1}]",
    ],
)
def test_malformed_specs_are_rejected(bad):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(bad)


def test_scatter_is_deterministic_in_seed():
    sites = ("s0", "s1", "s2")
    first = FaultPlan.scatter(sites, seed=7, rounds=4, drop=0.3, corrupt=0.2)
    again = FaultPlan.scatter(sites, seed=7, rounds=4, drop=0.3, corrupt=0.2)
    other = FaultPlan.scatter(sites, seed=8, rounds=4, drop=0.3, corrupt=0.2)
    assert first.rules == again.rules
    assert first.rules != other.rules
    assert all(rule.kind in ("drop", "corrupt") for rule in first.rules)


def test_rule_matching_honours_site_round_direction():
    rule = FaultRule("drop", site="s1", rounds=(1, 2), direction="up")
    assert rule.matches("s1", 1, "up")
    assert not rule.matches("s0", 1, "up")
    assert not rule.matches("s1", 3, "up")
    assert not rule.matches("s1", 1, "down")
    anywhere = FaultRule("corrupt")
    assert anywhere.matches("s9", 17, "down")


# ---------------------------------------------------------------------------
# FaultyChannel semantics per kind
# ---------------------------------------------------------------------------

TINY = Relation(Schema.of(("K", INT)), [(1,), (2,)])


def _channel(spec: str) -> FaultyChannel:
    return FaultyChannel("s0", plan=FaultPlan.parse(spec))


def _down(round_index: int = 0, payload=None) -> Message:
    return Message(BASE_QUERY, "coordinator", "s0", round_index, payload)


def _up(round_index: int = 0, payload=None) -> Message:
    return Message(SUB_RESULT, "s0", "coordinator", round_index, payload)


def test_drop_charges_bytes_but_never_delivers():
    channel = _channel("drop site=s0 round=0 dir=down times=1")
    message = _down()
    channel.send_to_site(message)
    assert channel.downstream.bytes == message.size_bytes  # lost in flight
    with pytest.raises(NetworkError):
        channel.receive_at_site()
    assert channel.events == [FaultEvent("drop", "s0", 0, "down")]
    # The rule's budget is spent: the next message sails through.
    channel.send_to_site(_down())
    assert channel.receive_at_site().kind == BASE_QUERY


def test_delay_fails_one_receive_then_delivers():
    channel = _channel("delay site=s0 round=0 dir=down")
    channel.send_to_site(_down())
    with pytest.raises(NetworkError, match="delayed in flight"):
        channel.receive_at_site()
    assert channel.receive_at_site().kind == BASE_QUERY


def test_duplicate_copy_is_deduplicated_and_charged_separately():
    channel = _channel("duplicate site=s0 dir=up")
    message = _up(payload=serialize.encode_relation(TINY))
    channel.send_to_coordinator(message)
    assert channel.upstream.bytes == message.size_bytes  # stats see one copy
    assert (
        channel.metrics.counter(
            "net.fault.bytes", kind="duplicate", site="s0"
        ).value
        == message.size_bytes
    )
    assert channel.receive_at_coordinator() is message
    with pytest.raises(NetworkError):  # the copy was silently de-duplicated
        channel.receive_at_coordinator()
    assert channel.metrics.counter("net.fault.deduplicated", site="s0").value == 1


def test_corrupt_payload_fails_decode_loudly():
    channel = _channel("corrupt site=s0 dir=up")
    payload = serialize.encode_relation(TINY)
    channel.send_to_coordinator(_up(payload=payload))
    received = channel.receive_at_coordinator()
    assert received.size_bytes == HEADER_BYTES + len(payload)  # length preserved
    with pytest.raises(SerializationError):
        received.relation()
    assert serialize.decode_relation(corrupt_payload(corrupt_payload(payload)))


def test_corrupt_skips_header_only_messages():
    channel = _channel("corrupt site=s0")
    channel.send_to_site(_down())  # no payload: nothing to corrupt
    assert channel.receive_at_site().kind == BASE_QUERY
    assert channel.events == []


def test_crash_dooms_whole_attempts_until_budget_spent():
    channel = _channel("crash site=s0 rounds=1-1 times=2")
    for _attempt in range(2):
        channel.begin_attempt(1)
        with pytest.raises(SiteUnavailableError):
            channel.send_to_site(_down(1))
        with pytest.raises(SiteUnavailableError):
            channel.receive_at_coordinator()
    channel.begin_attempt(1)  # budget spent: the site is back
    channel.send_to_site(_down(1))
    assert channel.receive_at_site().kind == BASE_QUERY
    assert channel.events == [FaultEvent("crash", "s0", 1, "*")] * 2


def test_network_builds_faulty_channels_and_collects_events():
    plan = FaultPlan.parse("drop site=a round=0 dir=down times=1")
    network = Network(("a", "b"), faults=plan)
    assert isinstance(network.channel("a"), FaultyChannel)
    network.channel("a").send_to_site(Message(BASE_QUERY, "coordinator", "a", 0))
    network.channel("b").send_to_site(Message(BASE_QUERY, "coordinator", "b", 0))
    assert network.fault_events() == [FaultEvent("drop", "a", 0, "down")]
    assert network.channel("b").receive_at_site().kind == BASE_QUERY


def test_drain_pending_discards_both_directions():
    channel = FaultyChannel("s0", plan=FaultPlan.parse("delay site=s0 dir=down"))
    channel.send_to_site(_down())
    channel.send_to_coordinator(_up())
    assert channel.drain_pending() == 2
    with pytest.raises(NetworkError):
        channel.receive_at_site()


# ---------------------------------------------------------------------------
# Message & bookkeeper validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad_round", [-1, True, 1.5, None])
def test_message_rejects_malformed_round_index(bad_round):
    with pytest.raises(SerializationError):
        Message(BASE_QUERY, "coordinator", "s0", bad_round)


def test_message_rejects_bad_payload_and_empty_endpoints():
    with pytest.raises(SerializationError):
        Message(BASE_QUERY, "coordinator", "s0", 0, payload="text")
    with pytest.raises(SerializationError):
        Message(BASE_QUERY, "", "s0", 0)
    with pytest.raises(SerializationError):
        Message(BASE_QUERY, "coordinator", "", 0)


class _ForgedMessage:
    """A duck-typed message whose header lies about its size."""

    kind = SUB_RESULT
    sender = "s0"
    recipient = "coordinator"
    payload = b"abc"
    info: dict = {}

    def __init__(self, round_index=0, size_bytes=HEADER_BYTES + 3):
        self.round_index = round_index
        self.size_bytes = size_bytes


def test_direction_stats_rejects_inconsistent_size():
    channel = FaultyChannel("s0", plan=FaultPlan())
    with pytest.raises(NetworkError, match="malformed message"):
        channel.send_to_coordinator(_ForgedMessage(size_bytes=999))
    with pytest.raises(NetworkError, match="malformed message"):
        channel.send_to_coordinator(_ForgedMessage(round_index=-2))
    # Nothing was recorded or queued by the rejected sends.
    assert channel.upstream.bytes == 0
    assert channel.upstream.bytes_in_round(0) == 0
    with pytest.raises(NetworkError):
        channel.receive_at_coordinator()


# ---------------------------------------------------------------------------
# Retry policy unit behaviour
# ---------------------------------------------------------------------------


def test_retry_policy_validation_and_backoff_cap():
    with pytest.raises(ValueError):
        RetryPolicy(mode="panic")
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    policy = RetryPolicy(mode="retry", max_retries=3, backoff_s=0.1)
    assert policy.attempts == 4
    assert policy.backoff_for(0) == pytest.approx(0.1)
    assert policy.backoff_for(2) == pytest.approx(0.4)
    assert policy.backoff_for(50) == pytest.approx(0.1 * 32)  # capped
    assert RetryPolicy(mode="fail_fast").attempts == 1


def test_guard_leg_sleeps_backoff_and_heals():
    network = Network(
        ("s0",), faults=FaultPlan.parse("crash site=s0 round=0 times=2")
    )
    round_stats = RoundStats(0, "md")
    sleeps = []

    def leg(site_id):
        network.channel(site_id).send_to_site(_down())
        return "ok"

    guarded = guard_leg(
        leg,
        policy=RetryPolicy(mode="retry", max_retries=3, backoff_s=0.25),
        network=network,
        round_index=0,
        round_stats=round_stats,
        tracer=NULL_TRACER,
        sleep=sleeps.append,
    )
    assert guarded("s0") == "ok"
    assert sleeps == [0.25, 0.5]
    assert round_stats.site("s0").retries == 2
    assert network.metrics.counter("net.retry.attempts", site="s0").value == 2


def test_guard_leg_caps_backoff_by_remaining_budget():
    """A backoff larger than the remaining wall-clock budget is capped,
    not treated as exhaustion: the leg spends its whole timeout retrying.

    Regression test for the early-give-up defect where
    ``0 < remaining < backoff`` abandoned the leg with budget left.
    """
    network = Network(
        ("s0",), faults=FaultPlan.parse("crash site=s0 times=0")  # down forever
    )
    round_stats = RoundStats(0, "md")
    now = [0.0]
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        now[0] += seconds

    def leg(site_id):
        network.channel(site_id).send_to_site(_down())

    guarded = guard_leg(
        leg,
        policy=RetryPolicy(
            mode="retry", max_retries=10_000, backoff_s=0.4, leg_timeout_s=1.0
        ),
        network=network,
        round_index=0,
        round_stats=round_stats,
        tracer=NULL_TRACER,
        sleep=fake_sleep,
        clock=lambda: now[0],
    )
    with pytest.raises(RetryExhaustedError) as excinfo:
        guarded("s0")
    # Backoffs 0.4 then 0.8-capped-to-0.6 fill the 1.0s budget exactly;
    # the third attempt runs at t=1.0 and only then is the leg exhausted.
    assert sleeps == [pytest.approx(0.4), pytest.approx(0.6)]
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.cause, SiteUnavailableError)


def test_guard_leg_never_sleeps_after_final_attempt():
    """Once the attempt budget is spent the leg raises immediately — a
    trailing backoff sleep would only delay the failure."""
    network = Network(
        ("s0",), faults=FaultPlan.parse("crash site=s0 times=0")
    )
    round_stats = RoundStats(0, "md")
    sleeps = []

    def leg(site_id):
        network.channel(site_id).send_to_site(_down())

    guarded = guard_leg(
        leg,
        policy=RetryPolicy(mode="retry", max_retries=1, backoff_s=0.25),
        network=network,
        round_index=0,
        round_stats=round_stats,
        tracer=NULL_TRACER,
        sleep=sleeps.append,
    )
    with pytest.raises(RetryExhaustedError) as excinfo:
        guarded("s0")
    assert excinfo.value.attempts == 2
    # One sleep between the two attempts, none after the final failure.
    assert sleeps == [pytest.approx(0.25)]


def test_guard_leg_does_not_retry_programming_errors():
    network = Network(("s0",))
    calls = []

    def leg(site_id):
        calls.append(site_id)
        raise ZeroDivisionError("bug, not weather")

    guarded = guard_leg(
        leg,
        policy=RetryPolicy(mode="retry", max_retries=5, backoff_s=0.0),
        network=network,
        round_index=0,
        round_stats=RoundStats(0, "md"),
        tracer=NULL_TRACER,
    )
    with pytest.raises(ZeroDivisionError):
        guarded("s0")
    assert calls == ["s0"]


# ---------------------------------------------------------------------------
# End-to-end: the acceptance scenario and engine equivalence
# ---------------------------------------------------------------------------

FLOW = make_flows(count=240, seed=17, routers=8)
KEY = (base.SourceAS == detail.SourceAS) & (base.DestAS == detail.DestAS)

#: drop one sub-result + crash one of four sites for two rounds. ``times``
#: counts doomed leg attempts: 4 = two rounds under degrade's two-attempt
#: budget; retry's six-attempt budget burns through it within round 1.
ACCEPTANCE_SPEC = (
    "drop site=site1 round=1 dir=up times=1; "
    "crash site=site1 rounds=1-2 times=4"
)


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("sum", detail.NumBytes, "s")], KEY)],
    )
    outer = MDStep(
        "Flow",
        [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.s / base.cnt))],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS", "DestAS"]), [inner, outer])


def run_faulty(executor="serial", faults=None, site_count=4, **config_kwargs):
    cluster = SimulatedCluster.with_sites(site_count)
    cluster.load_partitioned(
        "Flow", FLOW, HashPartitioner(["SourceAS"], site_count)
    )
    if faults is not None:
        plan = faults if isinstance(faults, FaultPlan) else FaultPlan.parse(faults)
        cluster.install_faults(plan)
    config = ExecutionConfig(
        executor=executor, retry_backoff_s=0.0, **config_kwargs
    )
    result = execute_query(
        cluster,
        correlated_expression(),
        options=OptimizationOptions.none(),
        config=config,
    )
    assert verify_against_network(result.stats, cluster.network) == []
    return result


def test_retry_mode_heals_to_bit_identical_result():
    clean = run_faulty()
    retried = run_faulty(
        faults=ACCEPTANCE_SPEC, failure_mode="retry", max_retries=5
    )
    assert retried.relation.rows == clean.relation.rows  # bit-identical
    assert retried.stats.retries == 5
    assert retried.stats.fault_count == 5  # 4 crash attempts + 1 drop
    assert retried.stats.excluded_sites == ()
    assert not retried.stats.degraded


def test_degrade_mode_records_the_excluded_site():
    clean = run_faulty()
    degraded = run_faulty(
        faults=ACCEPTANCE_SPEC, failure_mode="degrade", max_retries=1
    )
    assert degraded.stats.excluded_sites == ((1, "site1"), (2, "site1"))
    assert degraded.stats.degraded
    assert degraded.relation.rows != clean.relation.rows  # under-approximation
    snapshot = degraded.stats.to_dict()
    assert snapshot["excluded_sites"] == [[1, "site1"], [2, "site1"]]
    assert snapshot["failure_mode"] == "degrade"
    assert "EXCLUDED=site1" in degraded.stats.summary()


def test_fail_fast_mode_propagates_the_crash():
    with pytest.raises(SiteUnavailableError):
        run_faulty(faults=ACCEPTANCE_SPEC, failure_mode="fail_fast")


def test_retry_exhaustion_raises_with_site_and_cause():
    with pytest.raises(RetryExhaustedError) as excinfo:
        run_faulty(
            faults="crash site=site2 round=1 times=0",
            failure_mode="retry",
            max_retries=2,
        )
    assert excinfo.value.site_id == "site2"
    assert excinfo.value.attempts == 3


def test_all_sites_excluded_is_a_loud_plan_error():
    with pytest.raises(PlanError, match="every participating site"):
        run_faulty(
            faults="crash round=1 times=0",  # every site, forever
            failure_mode="degrade",
            max_retries=0,
        )


def test_degrade_survives_a_base_round_crash():
    clean = run_faulty()
    degraded = run_faulty(
        faults="crash site=site3 round=0 times=0",
        failure_mode="degrade",
        max_retries=1,
    )
    assert (0, "site3") in degraded.stats.excluded_sites
    assert len(degraded.relation) <= len(clean.relation)


@pytest.mark.parametrize("failure_mode", ["retry", "degrade"])
def test_serial_and_threads_agree_under_seeded_faults(failure_mode):
    """Same seeded FaultPlan, different engines: identical everything."""
    plan = FaultPlan.scatter(
        [f"site{index}" for index in range(4)],
        seed=23,
        rounds=3,
        drop=0.25,
        delay=0.25,
        duplicate=0.25,
        corrupt=0.2,
    )
    assert plan.rules, "seed produced an empty schedule"

    def observe(executor):
        result = run_faulty(
            executor=executor,
            faults=plan,
            failure_mode=failure_mode,
            max_retries=4,
        )
        per_round = [
            (
                round_stats.index,
                tuple(round_stats.excluded),
                tuple(
                    sorted(
                        (site_id, site.bytes_down, site.bytes_up,
                         site.tuples_up, site.retries)
                        for site_id, site in round_stats.sites.items()
                    )
                ),
            )
            for round_stats in result.stats.rounds
        ]
        return result.relation.rows, per_round, result.stats.faults

    serial_state = observe("serial")
    threads_state = observe("threads")
    assert threads_state == serial_state


# ---------------------------------------------------------------------------
# Executor failure paths: all failures reported, no leaked pools
# ---------------------------------------------------------------------------


def _assert_no_leaked_workers():
    assert [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("skalla-site", "skalla-leg"))
    ] == []
    assert multiprocessing.active_children() == []


def _crash_some_legs(engine, failing):
    def leg(site_id):
        if site_id in failing:
            raise NetworkError(f"{site_id} went dark")
        return site_id

    return engine.run_legs(tuple(sorted(failing | {"ok1", "ok2"})), leg)


def test_thread_engine_reports_every_failed_site():
    engine = ThreadEngine({f"s{index}": None for index in range(4)}, NULL_TRACER)
    try:
        with pytest.raises(MultiLegError) as excinfo:
            _crash_some_legs(engine, failing={"bad1", "bad2"})
        assert excinfo.value.failed_sites == ("bad1", "bad2")
        assert {
            type(error).__name__ for error in excinfo.value.failures.values()
        } == {"NetworkError"}
    finally:
        engine.close()
    _assert_no_leaked_workers()


def test_single_failure_keeps_its_original_exception_type():
    # Pool sized to the leg count (the evaluator's contract): every leg
    # starts, so a lone failure re-raises its original exception.
    engine = ThreadEngine({f"s{index}": None for index in range(3)}, NULL_TRACER)
    try:
        with pytest.raises(NetworkError, match="bad1 went dark"):
            _crash_some_legs(engine, failing={"bad1"})
    finally:
        engine.close()


def test_undersized_pool_reports_cancelled_legs():
    # With one worker, legs behind a failure never start; they are
    # reported as cancelled rather than silently abandoned.
    engine = ThreadEngine({"s0": None}, NULL_TRACER, max_workers=1)
    try:
        with pytest.raises(MultiLegError) as excinfo:
            _crash_some_legs(engine, failing={"bad1"})
        assert excinfo.value.failed_sites == ("bad1",)
        assert set(excinfo.value.cancelled) == {"ok1", "ok2"}
    finally:
        engine.close()


def test_serial_engine_raises_first_failure_directly():
    engine = SerialEngine({}, NULL_TRACER)
    with pytest.raises(NetworkError, match="bad1 went dark"):
        _crash_some_legs(engine, failing={"bad1", "bad2"})
    engine.close()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process engine needs fork",
)
def test_process_engine_closes_pools_after_crashing_leg():
    engine = ProcessEngine({f"s{index}": None for index in range(2)}, NULL_TRACER)
    try:
        assert len(multiprocessing.active_children()) >= 1
        with pytest.raises(MultiLegError) as excinfo:
            _crash_some_legs(engine, failing={"bad1", "bad2"})
        assert excinfo.value.failed_sites == ("bad1", "bad2")
    finally:
        engine.close()
    _assert_no_leaked_workers()


@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_evaluator_closes_engine_when_a_leg_crashes(executor):
    if executor == "processes" and "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("process engine needs fork")
    with pytest.raises((SiteUnavailableError, MultiLegError)):
        run_faulty(
            executor=executor,
            faults="crash site=site0 times=0; crash site=site2 times=0",
            failure_mode="fail_fast",
        )
    _assert_no_leaked_workers()


def test_multi_leg_error_message_lists_sites_and_causes():
    error = MultiLegError(
        {"s2": NetworkError("boom"), "s0": ValueError("bad")},
        cancelled=("s3",),
    )
    assert error.failed_sites == ("s0", "s2")
    assert "s0: ValueError: bad" in str(error)
    assert "s2: NetworkError: boom" in str(error)
    assert "cancelled before start: s3" in str(error)


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------


def test_execution_config_validates_recovery_knobs():
    with pytest.raises(PlanError):
        ExecutionConfig(failure_mode="hope")
    with pytest.raises(PlanError):
        ExecutionConfig(max_retries=-1)
    with pytest.raises(PlanError):
        ExecutionConfig(retry_backoff_s=-0.1)
    with pytest.raises(PlanError):
        ExecutionConfig(leg_timeout_s=-1.0)
    policy = ExecutionConfig(
        failure_mode="degrade", max_retries=7, retry_backoff_s=0.0
    ).retry_policy()
    assert (policy.mode, policy.max_retries) == ("degrade", 7)


def test_fault_free_run_records_no_recovery_activity():
    result = run_faulty(failure_mode="retry", max_retries=3)
    assert result.stats.retries == 0
    assert result.stats.fault_count == 0
    assert result.stats.excluded_sites == ()
    assert "recovery" not in result.stats.summary()
