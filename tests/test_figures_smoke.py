"""Smoke tests: every paper figure runs at micro scale with verified arms.

Full-scale shape assertions (growth exponents, crossovers) live in the
benchmarks; here we check that each experiment executes, all arms match
the centralized reference (enforced inside run_arms), and the basic
qualitative orderings hold even at tiny scale.
"""

import pytest

from repro.bench.figures import figure2, figure2_aware, figure3, figure4, figure5

MICRO = dict(scale=0.0002, participating=[1, 3])


class TestFigure2:
    def test_runs_and_reduces_traffic(self):
        series, formula_points = figure2(**MICRO)
        assert series.x_values == [1, 3]
        for point in series.measurements:
            assert (
                point["group_reduction"].bytes_total
                <= point["no_reduction"].bytes_total
            )

    def test_traffic_formula_within_five_percent(self):
        _series, formula_points = figure2(**MICRO)
        for point in formula_points:
            assert point.relative_error < 0.05

    def test_show_renders(self):
        series, _formula = figure2(**MICRO)
        text = series.show()
        assert "Figure 2" in text
        assert "bytes transferred" in text

    def test_aware_extension_runs_and_wins(self):
        series = figure2_aware(**MICRO)
        for point in series.measurements:
            assert (
                point["aware+independent"].bytes_total
                <= point["independent_only"].bytes_total
            )
            assert (
                point["independent_only"].bytes_total
                <= point["no_reduction"].bytes_total
            )


class TestFigure3:
    def test_coalesced_always_cheaper(self):
        result = figure3(**MICRO)
        for label in ("high", "low"):
            for point in result[label].measurements:
                assert (
                    point["coalesced"].bytes_total
                    < point["non_coalesced"].bytes_total
                )
                assert (
                    point["coalesced"].synchronizations
                    < point["non_coalesced"].synchronizations
                )

    def test_coalesced_single_synchronization(self):
        result = figure3(**MICRO)
        for point in result["high"].measurements:
            assert point["coalesced"].synchronizations == 1


class TestFigure4:
    def test_sync_reduction_cuts_rounds_high_cardinality(self):
        result = figure4(**MICRO)
        for point in result["high"].measurements:
            assert point["sync_reduction"].synchronizations == 1
            assert point["no_sync_reduction"].synchronizations == 3

    def test_low_cardinality_still_helps_but_less(self):
        result = figure4(**MICRO)
        for point in result["low"].measurements:
            # SuppKey is not a partition attribute: only Proposition 2
            # applies, leaving two synchronizations.
            assert point["sync_reduction"].synchronizations == 2
            assert (
                point["sync_reduction"].bytes_total
                < point["no_sync_reduction"].bytes_total
            )


class TestFigure5:
    def test_scaleup_both_variants(self):
        for constant_groups in (False, True):
            series = figure5(
                base_scale=0.0002,
                scale_factors=(1, 2),
                constant_groups=constant_groups,
            )
            for point in series.measurements:
                assert (
                    point["all_optimizations"].bytes_total
                    < point["no_optimizations"].bytes_total
                )

    def test_group_growth_variants_differ(self):
        growing = figure5(base_scale=0.0002, scale_factors=(1, 2))
        constant = figure5(
            base_scale=0.0002, scale_factors=(1, 2), constant_groups=True
        )
        growing_rows = growing.column("no_optimizations", "result_rows")
        constant_rows = constant.column("no_optimizations", "result_rows")
        assert growing_rows[1] > growing_rows[0]
        assert constant_rows[1] == constant_rows[0]
