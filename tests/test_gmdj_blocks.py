"""Unit tests for MDBlock and GMDJ schema derivation."""

import pytest

from repro.errors import AggregateError, ExpressionError
from repro.gmdj.blocks import (
    MDBlock,
    block_output_attributes,
    result_schema,
    sub_result_schema,
)
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, col, detail
from repro.relalg.schema import INT, Schema

CONDITION = base.k == detail.k


class TestMDBlock:
    def test_construction(self):
        block = MDBlock([count_star("c")], CONDITION)
        assert block.output_names() == ("c",)
        assert not block.has_holistic

    def test_needs_aggregates(self):
        with pytest.raises(AggregateError):
            MDBlock([], CONDITION)

    def test_rejects_non_aggspec(self):
        with pytest.raises(AggregateError):
            MDBlock(["count"], CONDITION)

    def test_rejects_base_fields_in_aggregate_input(self):
        with pytest.raises(AggregateError):
            MDBlock([AggSpec("sum", base.v, "s")], CONDITION)

    def test_accepts_detail_and_unqualified_inputs(self):
        MDBlock([AggSpec("sum", detail.v, "s1"), AggSpec("sum", col.v, "s2")], CONDITION)

    def test_rejects_unqualified_condition_fields(self):
        with pytest.raises(ExpressionError):
            MDBlock([count_star("c")], col.k == detail.k)

    def test_rejects_non_expr_condition(self):
        with pytest.raises(ExpressionError):
            MDBlock([count_star("c")], True)

    def test_holistic_flag(self):
        block = MDBlock([AggSpec("median", detail.v, "m")], CONDITION)
        assert block.has_holistic

    def test_str(self):
        text = str(MDBlock([count_star("c")], CONDITION))
        assert "count(*)" in text
        assert "WHERE" in text


class TestSchemas:
    BASE = Schema.of(("k", INT),)
    BLOCKS = [
        MDBlock([count_star("c"), AggSpec("avg", detail.v, "a")], CONDITION),
        MDBlock([AggSpec("sum", detail.v, "s")], CONDITION),
    ]

    def test_result_schema(self):
        schema = result_schema(self.BASE, self.BLOCKS)
        assert schema.names == ("k", "c", "a", "s")

    def test_sub_result_schema_expands_algebraic(self):
        schema = sub_result_schema(self.BASE, self.BLOCKS)
        assert schema.names == ("k", "c", "a__sum", "a__count", "s")

    def test_block_output_attributes(self):
        names = [attribute.name for attribute in block_output_attributes(self.BLOCKS)]
        assert names == ["c", "a", "s"]
