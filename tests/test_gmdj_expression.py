"""Unit tests for GMDJ expression chains."""

import pytest

from conftest import assert_relations_equal, brute_force_gmdj, make_flows
from repro.errors import PlanError, SchemaError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import (
    DistinctBase,
    GMDJExpression,
    LiteralBase,
    MDStep,
)
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema

FLOW = make_flows(count=100, seed=8)
TABLES = {"Flow": FLOW}
KEY_CONDITION = base.SourceAS == detail.SourceAS


def one_step(output="cnt", condition=KEY_CONDITION):
    return MDStep("Flow", [MDBlock([count_star(output)], condition)])


class TestSources:
    def test_distinct_base(self):
        source = DistinctBase("Flow", ["SourceAS"])
        assert source.key == ("SourceAS",)
        assert source.table_name == "Flow"
        evaluated = source.evaluate(TABLES)
        assert evaluated.same_rows(FLOW.distinct_project(["SourceAS"]))
        assert source.schema({"Flow": FLOW.schema}).names == ("SourceAS",)

    def test_distinct_base_needs_attrs(self):
        with pytest.raises(SchemaError):
            DistinctBase("Flow", [])

    def test_literal_base(self):
        relation = Relation(Schema.of(("SourceAS", INT),), [(1,), (2,)])
        source = LiteralBase(relation, ["SourceAS"])
        assert source.evaluate(TABLES) is relation
        assert source.key == ("SourceAS",)
        assert source.table_name is None

    def test_literal_base_validates_key(self):
        relation = Relation(Schema.of(("SourceAS", INT),), [(1,)])
        with pytest.raises(Exception):
            LiteralBase(relation, ["nope"])


class TestMDStep:
    def test_output_names(self):
        step = MDStep(
            "Flow",
            [
                MDBlock([count_star("c"), AggSpec("sum", detail.NumBytes, "s")], KEY_CONDITION),
                MDBlock([count_star("c2")], KEY_CONDITION),
            ],
        )
        assert step.output_names() == ("c", "s", "c2")

    def test_needs_blocks(self):
        with pytest.raises(PlanError):
            MDStep("Flow", [])

    def test_str(self):
        assert "Flow" in str(one_step())


class TestGMDJExpression:
    def test_requires_steps(self):
        with pytest.raises(PlanError):
            GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [])

    def test_requires_base_source(self):
        with pytest.raises(PlanError):
            GMDJExpression(FLOW, [one_step()])

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(SchemaError):
            GMDJExpression(
                DistinctBase("Flow", ["SourceAS"]), [one_step("c"), one_step("c")]
            )

    def test_metadata(self):
        expression = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]), [one_step("a"), one_step("b")]
        )
        assert expression.key == ("SourceAS",)
        assert expression.detail_tables() == ("Flow", "Flow")
        assert not expression.has_holistic

    def test_result_schema(self):
        expression = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]), [one_step("a"), one_step("b")]
        )
        schema = expression.result_schema({"Flow": FLOW.schema})
        assert schema.names == ("SourceAS", "a", "b")

    def test_describe(self):
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [one_step()])
        text = expression.describe()
        assert "B0" in text
        assert "B1" in text

    def test_holistic_flag(self):
        step = MDStep(
            "Flow", [MDBlock([AggSpec("median", detail.NumBytes, "m")], KEY_CONDITION)]
        )
        assert GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step]).has_holistic


class TestCentralizedEvaluation:
    def test_single_step(self):
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [one_step()])
        result = expression.evaluate_centralized(TABLES)
        reference = brute_force_gmdj(
            FLOW.distinct_project(["SourceAS"]), FLOW, expression.steps[0].blocks
        )
        assert_relations_equal(result, reference)

    def test_chain_feeds_aggregates_forward(self):
        inner = MDStep(
            "Flow",
            [
                MDBlock(
                    [count_star("cnt"), AggSpec("sum", detail.NumBytes, "total")],
                    KEY_CONDITION,
                )
            ],
        )
        outer = MDStep(
            "Flow",
            [
                MDBlock(
                    [count_star("above")],
                    KEY_CONDITION & (detail.NumBytes >= base.total / base.cnt),
                )
            ],
        )
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])
        result = expression.evaluate_centralized(TABLES)

        b1 = brute_force_gmdj(FLOW.distinct_project(["SourceAS"]), FLOW, inner.blocks)
        reference = brute_force_gmdj(b1, FLOW, outer.blocks)
        assert_relations_equal(result, reference)

    def test_unknown_detail_table(self):
        expression = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]),
            [MDStep("Mystery", [MDBlock([count_star("c")], KEY_CONDITION)])],
        )
        with pytest.raises(PlanError):
            expression.evaluate_centralized(TABLES)

    def test_literal_base_chain(self):
        literal = Relation(Schema.of(("SourceAS", INT),), [(0,), (1,), (99,)])
        expression = GMDJExpression(LiteralBase(literal, ["SourceAS"]), [one_step()])
        result = expression.evaluate_centralized(TABLES)
        assert len(result) == 3
        by_key = {row[0]: row[1] for row in result.rows}
        assert by_key[99] == 0  # group absent from the data still present
