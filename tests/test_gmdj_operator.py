"""GMDJ operator semantics, validated against a brute-force Definition 1."""

import random

import pytest

from conftest import brute_force_gmdj, assert_relations_equal, make_flows
from repro.errors import HolisticAggregateError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.operator import evaluate, evaluate_both, evaluate_sub, super_aggregate
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema

FLOW = make_flows(count=120, seed=5)
BASE = FLOW.distinct_project(["SourceAS", "DestAS"])

KEY_CONDITION = (base.SourceAS == detail.SourceAS) & (base.DestAS == detail.DestAS)


class TestAgainstBruteForce:
    def test_simple_grouping(self):
        blocks = [
            MDBlock(
                [count_star("cnt"), AggSpec("sum", detail.NumBytes, "total")],
                KEY_CONDITION,
            )
        ]
        assert_relations_equal(
            evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
        )

    def test_overlapping_groups(self):
        # RNG sets overlap: every base row aggregates all detail rows with
        # NumBytes above its own SourceAS * 100 — not SQL-expressible.
        blocks = [
            MDBlock(
                [count_star("cnt"), AggSpec("max", detail.NumBytes, "biggest")],
                detail.NumBytes > base.SourceAS * 100.0,
            )
        ]
        assert_relations_equal(
            evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
        )

    def test_multiple_blocks(self):
        blocks = [
            MDBlock([count_star("cnt_all")], KEY_CONDITION),
            MDBlock(
                [AggSpec("avg", detail.NumBytes, "avg_small")],
                KEY_CONDITION & (detail.NumBytes < 1000),
            ),
        ]
        assert_relations_equal(
            evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
        )

    def test_residual_condition(self):
        blocks = [
            MDBlock(
                [count_star("cnt")],
                (base.SourceAS == detail.SourceAS)
                & (detail.DestAS > base.DestAS),
            )
        ]
        assert_relations_equal(
            evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
        )

    def test_base_only_conjunct(self):
        blocks = [
            MDBlock(
                [count_star("cnt")],
                KEY_CONDITION & (base.SourceAS < 8),
            )
        ]
        assert_relations_equal(
            evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
        )

    def test_expression_valued_equality_atom(self):
        blocks = [
            MDBlock(
                [count_star("cnt")],
                base.SourceAS + base.DestAS == detail.SourceAS,
            )
        ]
        assert_relations_equal(
            evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
        )

    def test_randomized_conditions(self):
        rng = random.Random(99)
        condition_pool = [
            KEY_CONDITION,
            base.SourceAS == detail.SourceAS,
            (base.SourceAS == detail.SourceAS) & (detail.NumBytes >= 500),
            detail.DestAS == base.DestAS,
            (detail.SourceAS > base.SourceAS) & (detail.DestAS == base.DestAS),
        ]
        for _trial in range(5):
            blocks = [
                MDBlock(
                    [count_star(f"c{i}"), AggSpec("avg", detail.NumBytes, f"a{i}")],
                    rng.choice(condition_pool),
                )
                for i in range(rng.randrange(1, 3))
            ]
            assert_relations_equal(
                evaluate(BASE, FLOW, blocks), brute_force_gmdj(BASE, FLOW, blocks)
            )


class TestEdgeCases:
    def test_empty_detail(self):
        blocks = [
            MDBlock(
                [count_star("cnt"), AggSpec("sum", detail.NumBytes, "s")],
                KEY_CONDITION,
            )
        ]
        result = evaluate(BASE, Relation.empty(FLOW.schema), blocks)
        assert len(result) == len(BASE)
        for row in result.rows:
            assert row[-2] == 0  # COUNT over empty RNG
            assert row[-1] is None  # SUM over empty RNG

    def test_empty_base(self):
        blocks = [MDBlock([count_star("cnt")], KEY_CONDITION)]
        result = evaluate(Relation.empty(BASE.schema), FLOW, blocks)
        assert len(result) == 0

    def test_duplicate_base_rows_each_counted(self):
        doubled = BASE.union_all(BASE)
        blocks = [MDBlock([count_star("cnt")], KEY_CONDITION)]
        result = evaluate(doubled, FLOW, blocks)
        assert_relations_equal(result, brute_force_gmdj(doubled, FLOW, blocks))

    def test_null_join_values(self):
        schema = Schema.of(("k", INT), ("v", FLOAT))
        detail_relation = Relation(schema, [(1, 1.0), (None, 2.0)])
        base_relation = Relation(
            Schema.of(("k", INT),), [(1,), (None,)]
        )
        blocks = [MDBlock([count_star("cnt")], base.k == detail.k)]
        result = evaluate(base_relation, detail_relation, blocks)
        by_key = {row[0]: row[1] for row in result.rows}
        assert by_key[1] == 1
        # NULL == NULL is False under SQL comparison semantics: count 0.
        assert by_key[None] == 0

    def test_holistic_centrally_ok(self):
        blocks = [MDBlock([AggSpec("median", detail.NumBytes, "med")], KEY_CONDITION)]
        result = evaluate(BASE, FLOW, blocks)
        assert_relations_equal(result, brute_force_gmdj(BASE, FLOW, blocks))

    def test_holistic_sub_rejected(self):
        blocks = [MDBlock([AggSpec("median", detail.NumBytes, "med")], KEY_CONDITION)]
        with pytest.raises(HolisticAggregateError):
            evaluate_sub(BASE, FLOW, blocks)
        with pytest.raises(HolisticAggregateError):
            evaluate_both(BASE, FLOW, blocks)


class TestSubAndSuper:
    BLOCKS = [
        MDBlock(
            [count_star("cnt"), AggSpec("avg", detail.NumBytes, "avg_nb")],
            KEY_CONDITION,
        )
    ]

    def test_theorem1_two_way_partition(self):
        half = len(FLOW.rows) // 2
        part_a = Relation(FLOW.schema, FLOW.rows[:half])
        part_b = Relation(FLOW.schema, FLOW.rows[half:])
        h_a, _touched = evaluate_sub(BASE, part_a, self.BLOCKS)
        h_b, _touched = evaluate_sub(BASE, part_b, self.BLOCKS)
        merged = super_aggregate(
            BASE, h_a.union_all(h_b), ["SourceAS", "DestAS"], self.BLOCKS
        )
        assert_relations_equal(merged, evaluate(BASE, FLOW, self.BLOCKS))

    def test_theorem1_many_way_partition(self):
        pieces = [
            Relation(FLOW.schema, FLOW.rows[start::5]) for start in range(5)
        ]
        h = None
        for piece in pieces:
            h_i, _touched = evaluate_sub(BASE, piece, self.BLOCKS)
            h = h_i if h is None else h.union_all(h_i)
        merged = super_aggregate(BASE, h, ["SourceAS", "DestAS"], self.BLOCKS)
        assert_relations_equal(merged, evaluate(BASE, FLOW, self.BLOCKS))

    def test_touch_flags_match_counts(self):
        sub, touched = evaluate_sub(BASE, FLOW, self.BLOCKS)
        count_position = sub.schema.position("cnt")
        for row, touch in zip(sub.rows, touched):
            assert (row[count_position] > 0) == touch

    def test_touch_flags_or_across_blocks(self):
        blocks = [
            MDBlock([count_star("c1")], KEY_CONDITION & (detail.NumBytes < 0)),
            MDBlock([count_star("c2")], KEY_CONDITION),
        ]
        _sub, touched = evaluate_sub(BASE, FLOW, blocks)
        assert all(touched)  # second block touches every group

    def test_evaluate_both_consistent(self):
        full, sub, touched = evaluate_both(BASE, FLOW, self.BLOCKS)
        assert_relations_equal(full, evaluate(BASE, FLOW, self.BLOCKS))
        expected_sub, expected_touched = evaluate_sub(BASE, FLOW, self.BLOCKS)
        assert_relations_equal(sub, expected_sub)
        assert touched == expected_touched

    def test_super_aggregate_on_empty_h(self):
        h, _touched = evaluate_sub(BASE, Relation.empty(FLOW.schema), self.BLOCKS)
        merged = super_aggregate(BASE, h, ["SourceAS", "DestAS"], self.BLOCKS)
        for row in merged.rows:
            assert row[-2] == 0
            assert row[-1] is None
