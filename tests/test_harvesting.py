"""Tests for distribution-knowledge harvesting (Section 4.1's refinement).

An attribute that is NOT a partition attribute can still drive
distribution-aware group reduction when each of its values occurs at only
a few sites: harvesting records the observed per-site value sets as φᵢ.
"""

import random

import pytest

from conftest import assert_relations_equal
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, Schema

SCHEMA = Schema.of(("Region", INT), ("Sensor", INT), ("Value", FLOAT))


def make_skewed(count=300, seed=7):
    """Sensor values cluster by region, but a few leak across regions —
    Sensor is NOT a partition attribute, yet each value touches at most
    two of four sites."""
    rng = random.Random(seed)
    rows = []
    for _index in range(count):
        region = rng.randrange(0, 4)
        if rng.random() < 0.9:
            sensor = region * 100 + rng.randrange(0, 20)
        else:
            sensor = ((region + 1) % 4) * 100 + rng.randrange(0, 20)
        rows.append((region, sensor, float(rng.randrange(1, 100))))
    return Relation(SCHEMA, rows)


DATA = make_skewed()


def sensor_query():
    step = MDStep(
        "T",
        [
            MDBlock(
                [count_star("cnt"), AggSpec("avg", detail.Value, "m")],
                base.Sensor == detail.Sensor,
            )
        ],
    )
    return GMDJExpression(DistinctBase("T", ["Sensor"]), [step])


def build_cluster():
    from repro.warehouse.partition import ValueListPartitioner

    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned(
        "T", DATA, ValueListPartitioner.spread("Region", range(4), 4)
    )
    return cluster


AWARE = OptimizationOptions(
    coalescing=False,
    sync_reduction=False,
    aware_group_reduction=True,
    independent_group_reduction=False,
    site_pruning=False,
)


class TestHarvesting:
    def test_returns_predicate_count(self):
        cluster = build_cluster()
        added = cluster.harvest_value_predicates("T", ["Sensor"])
        assert added == 4  # one per site

    def test_skips_oversized_value_sets(self):
        cluster = build_cluster()
        added = cluster.harvest_value_predicates("T", ["Sensor"], max_values=2)
        assert added == 0

    def test_unknown_attribute_raises(self):
        cluster = build_cluster()
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            cluster.harvest_value_predicates("T", ["Ghost"])

    def test_harvested_phi_is_truthful(self):
        cluster = build_cluster()
        cluster.harvest_value_predicates("T", ["Sensor"])
        from repro.relalg.expressions import DETAIL_VAR

        for site_id in cluster.site_ids:
            phi = cluster.catalog.phi("T", site_id)
            assert phi is not None
            predicate = phi.compile({DETAIL_VAR: SCHEMA})
            for row in cluster.site(site_id).warehouse.table("T").rows:
                assert predicate({DETAIL_VAR: row})

    def test_strengthens_existing_phi(self):
        cluster = build_cluster()
        before = cluster.catalog.phi("T", "site0")
        assert before is not None  # Region predicate from the partitioner
        cluster.harvest_value_predicates("T", ["Sensor"])
        after = cluster.catalog.phi("T", "site0")
        assert after is not before


class TestHarvestedAwareReduction:
    def test_reduces_traffic_and_stays_correct(self):
        cluster = build_cluster()
        expression = sensor_query()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())

        plain = execute_query(cluster, expression, AWARE)
        assert_relations_equal(reference, plain.relation)
        # Without harvesting, phi only covers Region: no filter derivable
        # for a Sensor-grouped query, so the full X ships everywhere.
        baseline_down = plain.stats.tuples_down

        cluster.harvest_value_predicates("T", ["Sensor"])
        cluster.reset_network()
        harvested = execute_query(cluster, expression, AWARE)
        assert_relations_equal(reference, harvested.relation)
        assert harvested.stats.tuples_down < baseline_down

    def test_values_spanning_sites_ship_to_each(self):
        cluster = build_cluster()
        cluster.harvest_value_predicates("T", ["Sensor"])
        expression = sensor_query()
        result = execute_query(cluster, expression, AWARE)
        # Each group ships to every site holding its value: total down
        # tuples is the sum of per-site distinct sensors.
        expected = sum(
            len(
                cluster.site(site_id)
                .warehouse.table("T")
                .distinct_project(["Sensor"])
            )
            for site_id in cluster.site_ids
        )
        assert result.stats.tuples_down == expected
