"""Tests for the multi-tier coordinator architecture (paper future work)."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    TreeTopology,
    execute_query,
    execute_query_hierarchical,
)
from repro.errors import NetworkError, PlanError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.gmdj.operator import evaluate_sub, merge_sub_results, super_aggregate, evaluate
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.warehouse.partition import RoundRobinPartitioner, ValueListPartitioner

FLOW = make_flows(count=400, seed=51)
KEY = base.SourceAS == detail.SourceAS


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )
    outer = MDStep(
        "Flow", [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.m))]
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])


def build_cluster(sites=8, partitioner=None):
    cluster = SimulatedCluster.with_sites(sites)
    partitioner = partitioner or ValueListPartitioner.spread("SourceAS", range(16), sites)
    cluster.load_partitioned("Flow", FLOW, partitioner)
    return cluster


class TestTreeTopology:
    def test_balanced(self):
        topology = TreeTopology.balanced(["a", "b", "c", "d", "e"], 2)
        assert set(topology.regions) == {"region0", "region1"}
        assert sorted(topology.all_sites) == ["a", "b", "c", "d", "e"]
        assert topology.region_of("a") == "region0"

    def test_validation(self):
        with pytest.raises(NetworkError):
            TreeTopology({})
        with pytest.raises(NetworkError):
            TreeTopology({"r": []})
        with pytest.raises(NetworkError):
            TreeTopology({"r1": ["a"], "r2": ["a"]})
        with pytest.raises(NetworkError):
            TreeTopology({"r": ["a"]}).region_of("ghost")

    @pytest.mark.parametrize("region_count", [0, -1, 5, 2.0, True])
    def test_balanced_boundary_region_counts_raise(self, region_count):
        # Degenerate counts are caller bugs: ValueError, not a network
        # condition — and never an empty-region or looping topology.
        with pytest.raises(ValueError, match="region_count"):
            TreeTopology.balanced(["a", "b", "c", "d"], region_count)

    def test_balanced_full_width_is_one_site_per_region(self):
        topology = TreeTopology.balanced(["a", "b", "c"], 3)
        assert all(len(sites) == 1 for sites in topology.regions.values())


class TestMergeSubResults:
    def test_merge_then_super_equals_direct_super(self):
        base_relation = FLOW.distinct_project(["SourceAS"])
        blocks = [
            MDBlock(
                [count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY
            )
        ]
        pieces = [Relation(FLOW.schema, FLOW.rows[start::4]) for start in range(4)]
        h = None
        for piece in pieces:
            h_i, _touched = evaluate_sub(base_relation, piece, blocks)
            h = h_i if h is None else h.union_all(h_i)
        merged = merge_sub_results(h, ["SourceAS"], blocks)
        # One row per key after merging.
        keys = [row[0] for row in merged.rows]
        assert len(keys) == len(set(keys))
        # Super-aggregating the merged H gives the same result.
        assert_relations_equal(
            super_aggregate(base_relation, merged, ["SourceAS"], blocks),
            evaluate(base_relation, FLOW, blocks),
        )

    def test_merge_is_idempotent(self):
        base_relation = FLOW.distinct_project(["SourceAS"])
        blocks = [MDBlock([count_star("cnt")], KEY)]
        h, _touched = evaluate_sub(base_relation, FLOW, blocks)
        once = merge_sub_results(h, ["SourceAS"], blocks)
        twice = merge_sub_results(once, ["SourceAS"], blocks)
        assert once.same_rows(twice)


OPTION_SETS = {
    "none": OptimizationOptions.none(),
    "all": OptimizationOptions.all(),
    "sync_only": OptimizationOptions(False, True, False, False, False),
    "reductions": OptimizationOptions(False, False, True, True, False),
}


class TestHierarchicalCorrectness:
    @pytest.mark.parametrize("options_name", sorted(OPTION_SETS))
    @pytest.mark.parametrize("region_count", [1, 2, 4])
    def test_matches_centralized(self, options_name, region_count):
        cluster = build_cluster(8)
        topology = TreeTopology.balanced(cluster.site_ids, region_count)
        expression = correlated_expression()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query_hierarchical(
            cluster, topology, expression, OPTION_SETS[options_name]
        )
        assert_relations_equal(reference, result.relation)

    def test_round_robin_partitioning(self):
        cluster = build_cluster(6, RoundRobinPartitioner(6))
        topology = TreeTopology.balanced(cluster.site_ids, 2)
        expression = correlated_expression()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query_hierarchical(
            cluster, topology, expression, OptimizationOptions.all()
        )
        assert_relations_equal(reference, result.relation)

    def test_topology_must_cover_plan_sites(self):
        cluster = build_cluster(4)
        topology = TreeTopology({"r0": ["site0", "site1"]})
        with pytest.raises(PlanError):
            execute_query_hierarchical(
                cluster, topology, correlated_expression(), OptimizationOptions.none()
            )


class TestRootLinkCompression:
    def test_root_link_carries_less_than_star_coordinator(self):
        """The headline benefit: per-round root traffic is O(regions),
        not O(sites), because regional coordinators merge sub-results."""
        cluster = build_cluster(8)
        expression = correlated_expression()
        star = execute_query(cluster, expression, OptimizationOptions.none())

        cluster.reset_network()
        topology = TreeTopology.balanced(cluster.site_ids, 2)
        tree = execute_query_hierarchical(
            cluster, topology, expression, OptimizationOptions.none()
        )
        assert tree.stats.root_link_bytes < star.stats.bytes_total
        # Site links carry about what the star carried in total.
        assert tree.stats.site_link_bytes <= star.stats.bytes_total * 1.05

    def test_single_region_degenerates_to_extra_hop(self):
        cluster = build_cluster(4)
        topology = TreeTopology.balanced(cluster.site_ids, 1)
        expression = correlated_expression()
        result = execute_query_hierarchical(
            cluster, topology, expression, OptimizationOptions.all()
        )
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        assert_relations_equal(reference, result.relation)

    def test_response_time_positive_and_stats_consistent(self):
        cluster = build_cluster(8)
        topology = TreeTopology.balanced(cluster.site_ids, 2)
        result = execute_query_hierarchical(
            cluster, topology, correlated_expression(), OptimizationOptions.none()
        )
        assert result.stats.response_time_s() > 0
        assert result.stats.bytes_total == (
            result.stats.root_link_bytes + result.stats.site_link_bytes
        )
        assert len(result.stats.rounds) == 3  # base + 2 MD rounds
