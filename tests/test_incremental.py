"""Tests for incremental (append-only) view refresh."""

import random

import pytest

from conftest import assert_relations_equal, make_flows, FLOW_TEST_SCHEMA
from repro.distributed import OptimizationOptions, SimulatedCluster
from repro.distributed.incremental import IncrementalView
from repro.distributed.stats import ExecutionStats
from repro.errors import PlanError, SchemaError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, LiteralBase, MDStep
from repro.queries.olap import QueryBuilder
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema
from repro.warehouse.partition import ValueListPartitioner

INITIAL = make_flows(count=200, seed=121)
KEY = base.SourceAS == detail.SourceAS

AGGS = [
    count_star("cnt"),
    AggSpec("avg", detail.NumBytes, "m"),
    AggSpec("min", detail.NumBytes, "lo"),
    AggSpec("max", detail.NumBytes, "hi"),
]


def single_step_expression(extra=None):
    condition = KEY if extra is None else KEY & extra
    step = MDStep("Flow", [MDBlock(AGGS, condition)])
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])


def build_cluster(initial=INITIAL):
    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned(
        "Flow", initial, ValueListPartitioner.spread("SourceAS", range(16), 4)
    )
    return cluster


def deltas_for(cluster, rows):
    """Split delta rows to sites per the cluster's partitioning."""
    partitioner = ValueListPartitioner.spread("SourceAS", range(16), 4)
    pieces = partitioner.split(Relation(FLOW_TEST_SCHEMA, rows))
    return {
        site_id: piece
        for site_id, piece in zip(cluster.site_ids, pieces)
        if len(piece)
    }


def reference_result(expression, cluster):
    return expression.evaluate_centralized(cluster.conceptual_tables())


class TestValidation:
    def test_rejects_chains(self):
        cluster = build_cluster()
        chain = (
            QueryBuilder("Flow", ["SourceAS"])
            .stage([count_star("c"), AggSpec("avg", detail.NumBytes, "m")])
            .stage([count_star("big")], extra=detail.NumBytes >= base.m)
            .build()
        )
        with pytest.raises(PlanError):
            IncrementalView(cluster, chain)

    def test_rejects_holistic(self):
        cluster = build_cluster()
        step = MDStep(
            "Flow", [MDBlock([AggSpec("median", detail.NumBytes, "med")], KEY)]
        )
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])
        with pytest.raises(PlanError):
            IncrementalView(cluster, expression)

    def test_rejects_degraded_base_state(self):
        """A degrade-mode run excluded sites, so its state is an
        under-approximation: building a view on it must fail loudly and
        name the missing sites, not silently refresh a wrong base.

        Regression test: degraded ``ExecutionStats`` used to be accepted.
        """
        cluster = build_cluster()
        expression = single_step_expression()
        stats = ExecutionStats(failure_mode="degrade")
        stats.new_round("md").exclude("site2")
        with pytest.raises(PlanError) as excinfo:
            IncrementalView(cluster, expression, source_stats=stats)
        assert "site2" in str(excinfo.value)
        # A clean (non-degraded) run's stats are accepted.
        clean = ExecutionStats()
        clean.new_round("md")
        IncrementalView(cluster, expression, source_stats=clean)

    def test_rejects_schema_mismatch(self):
        cluster = build_cluster()
        view = IncrementalView(cluster, single_step_expression())
        bad = Relation(Schema.of(("x", INT)), [(1,)])
        with pytest.raises(SchemaError):
            view.refresh({"site0": bad})


class TestInitialState:
    def test_matches_full_evaluation(self):
        cluster = build_cluster()
        expression = single_step_expression()
        view = IncrementalView(cluster, expression)
        assert_relations_equal(view.relation(), reference_result(expression, cluster))

    def test_group_count(self):
        cluster = build_cluster()
        view = IncrementalView(cluster, single_step_expression())
        assert view.group_count == len(INITIAL.distinct_project(["SourceAS"]))


class TestRefresh:
    def test_refresh_equals_full_reevaluation(self):
        cluster = build_cluster()
        expression = single_step_expression()
        view = IncrementalView(cluster, expression)
        new_flows = make_flows(count=80, seed=122)
        result = view.refresh(deltas_for(cluster, new_flows.rows))
        assert_relations_equal(result.relation, reference_result(expression, cluster))

    def test_new_groups_see_old_data(self):
        # Overlapping-group condition: a brand-new group must aggregate
        # OLD rows too. Condition: NumBytes above a per-group threshold.
        # Build initial data with SourceAS 15 deliberately absent.
        from repro.relalg.expressions import col

        initial = INITIAL.select(~(col.SourceAS == 15))
        assert len(initial) < len(INITIAL)
        cluster = build_cluster(initial)
        condition = detail.NumBytes >= base.SourceAS * 10.0
        step = MDStep("Flow", [MDBlock([count_star("cnt")], condition)])
        expression = GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [step])
        view = IncrementalView(cluster, expression)
        delta_rows = [(15 % 4, 15, 0, 55.0)]
        result = view.refresh(deltas_for(cluster, delta_rows))
        assert result.new_groups == 1
        assert_relations_equal(result.relation, reference_result(expression, cluster))
        # The new group's count covers old rows satisfying the condition,
        # not just the single delta row.
        by_key = {row[0]: row[1] for row in result.relation.rows}
        old_matching = sum(
            1
            for row in cluster.conceptual_table("Flow").rows
            if row[3] >= 150.0
        )
        assert by_key[15] == old_matching

    def test_repeated_refreshes(self):
        cluster = build_cluster()
        expression = single_step_expression(extra=detail.NumBytes > 100)
        view = IncrementalView(cluster, expression)
        rng = random.Random(9)
        for round_index in range(4):
            rows = [
                (
                    rng.randrange(0, 16) % 4,
                    rng.randrange(0, 16),
                    rng.randrange(0, 8),
                    float(rng.randrange(40, 4000)),
                )
                for _ in range(30)
            ]
            # Fix RouterId consistency with SourceAS pinning of the fixture.
            rows = [(source_as % 4, source_as, dest, volume) for _router, source_as, dest, volume in rows]
            view.refresh(deltas_for(cluster, rows))
        assert_relations_equal(view.relation(), reference_result(expression, cluster))

    def test_empty_delta_is_noop(self):
        cluster = build_cluster()
        expression = single_step_expression()
        view = IncrementalView(cluster, expression)
        before = view.relation()
        result = view.refresh({})
        assert result.new_groups == 0
        assert_relations_equal(before, result.relation)

    def test_literal_base_never_grows(self):
        cluster = build_cluster()
        literal = Relation(Schema.of(("SourceAS", INT)), [(0,), (1,), (99,)])
        step = MDStep("Flow", [MDBlock(AGGS, KEY)])
        expression = GMDJExpression(LiteralBase(literal, ["SourceAS"]), [step])
        view = IncrementalView(cluster, expression)
        new_flows = make_flows(count=40, seed=123)
        result = view.refresh(deltas_for(cluster, new_flows.rows))
        assert result.new_groups == 0
        assert len(result.relation) == 3
        assert_relations_equal(result.relation, reference_result(expression, cluster))

    def test_refresh_traffic_smaller_than_reevaluation(self):
        cluster = build_cluster()
        expression = single_step_expression()
        view = IncrementalView(cluster, expression)
        small_delta = deltas_for(cluster, make_flows(count=10, seed=124).rows)
        result = view.refresh(small_delta)
        # Delta up-leg only carries touched groups.
        assert result.stats.tuples_up <= 10
