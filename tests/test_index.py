"""Unit tests for the hash index backing the base-result structure."""

from repro.relalg.index import HashIndex
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, STR, Schema

SCHEMA = Schema.of(("a", INT), ("b", STR), ("c", INT))
RELATION = Relation(
    SCHEMA,
    [(1, "x", 10), (1, "y", 20), (2, "x", 30), (1, "x", 40)],
)


class TestHashIndex:
    def test_lookup_single_key(self):
        index = HashIndex(RELATION, ["a"])
        assert index.lookup((1,)) == [0, 1, 3]
        assert index.lookup((2,)) == [2]

    def test_lookup_composite_key(self):
        index = HashIndex(RELATION, ["a", "b"])
        assert index.lookup((1, "x")) == [0, 3]
        assert index.lookup((2, "y")) == []

    def test_contains_and_len(self):
        index = HashIndex(RELATION, ["a"])
        assert (1,) in index
        assert (9,) not in index
        assert len(index) == 2

    def test_keys(self):
        index = HashIndex(RELATION, ["a"])
        assert set(index.keys()) == {(1,), (2,)}

    def test_key_of(self):
        index = HashIndex(RELATION, ["a", "b"])
        assert index.key_of((5, "z", 0)) == (5, "z")

    def test_is_unique(self):
        assert not HashIndex(RELATION, ["a"]).is_unique
        assert HashIndex(RELATION, ["a", "b", "c"]).is_unique

    def test_empty_relation(self):
        index = HashIndex(Relation.empty(SCHEMA), ["a"])
        assert len(index) == 0
        assert index.lookup((1,)) == []

    def test_null_keys_indexable(self):
        relation = Relation(SCHEMA, [(None, "x", 1), (None, "x", 2)])
        index = HashIndex(relation, ["a"])
        assert index.lookup((None,)) == [0, 1]
