"""Load generator determinism and SLO reporting (`repro loadgen`).

The determinism contract is the load-bearing test: two runs with the
same (mix, seed) must submit identical queries in identical order, and
their reports must be identical once :func:`strip_timings` removes the
wall-clock-derived (and outcome-race-dependent) fields.
"""

import json
import random

import pytest

from repro.bench.loadgen import (
    MIXES,
    SELECTIVITY_FACTORS,
    LoadgenConfig,
    LoadgenError,
    _percentile,
    _summarize_step,
    build_query_pool,
    check_slo_baseline,
    config_from_report,
    render_slo_table,
    run_loadgen,
    schedule_queries,
    strip_timings,
)
from repro.service.service import FRESH, HIT, REJECTED, TIMEOUT


def small_config(**overrides) -> LoadgenConfig:
    """A sweep small enough for CI: 2 sites, 2 steps, 6 queries each."""
    settings = dict(
        mix="cube", sites=2, flow_count=120, steps=(1, 2),
        queries_per_step=6, timeout_s=10.0,
    )
    settings.update(overrides)
    return LoadgenConfig(**settings)


# ---------------------------------------------------------------------------
# Pool & schedule
# ---------------------------------------------------------------------------


class TestQueryPool:
    def test_pool_is_a_pure_function_of_mix(self):
        for mix in MIXES:
            first = [name for name, _ in build_query_pool(mix)]
            second = [name for name, _ in build_query_pool(mix)]
            assert first == second
            assert first  # never empty

    def test_mixed_blends_all_families(self):
        names = [name for name, _ in build_query_pool("mixed")]
        families = {name.split(":", 1)[0] for name in names}
        assert families == {"cube", "multifeature", "unpivot"}
        # One multifeature entry per selectivity factor.
        assert sum(1 for name in names if name.startswith("multifeature")) == (
            len(SELECTIVITY_FACTORS)
        )

    def test_unknown_mix_is_rejected(self):
        with pytest.raises(LoadgenError, match="mix"):
            build_query_pool("everything")

    def test_schedule_is_seed_deterministic(self):
        first = schedule_queries(7, 50, random.Random(17))
        second = schedule_queries(7, 50, random.Random(17))
        other_seed = schedule_queries(7, 50, random.Random(18))
        assert first == second
        assert first != other_seed
        assert all(0 <= index < 7 for index in first)


class TestConfig:
    def test_validation(self):
        with pytest.raises(LoadgenError, match="mode"):
            LoadgenConfig(mode="half-open")
        with pytest.raises(LoadgenError, match="mix"):
            LoadgenConfig(mix="everything")
        with pytest.raises(LoadgenError, match="step"):
            LoadgenConfig(steps=())
        with pytest.raises(LoadgenError, match="queries_per_step"):
            LoadgenConfig(queries_per_step=0)

    def test_round_trips_through_a_report(self):
        config = small_config()
        report = {"config": config.to_dict()}
        assert config_from_report(report) == config

    def test_report_without_config_is_rejected(self):
        with pytest.raises(LoadgenError, match="no config"):
            config_from_report({"steps": []})


# ---------------------------------------------------------------------------
# Step summaries (synthetic records: cheap and outcome-exact)
# ---------------------------------------------------------------------------


class TestSummarizeStep:
    def test_outcomes_and_hit_ratio(self):
        records = [
            (0, "q0", FRESH, 0.10, {"admission": 0.01, "execute": 0.09}),
            (1, "q0", HIT, 0.02, {"admission": 0.01, "lookup": 0.01}),
            (2, "q1", REJECTED, 0.001, {}),
            (3, "q1", TIMEOUT, 0.05, {}),
        ]
        step = _summarize_step("s", 2.0, ["q0", "q0", "q1", "q1"], records, 1.0)
        assert step["queries"] == 4
        assert step["outcomes"][FRESH] == 1
        assert step["outcomes"][HIT] == 1
        assert step["outcomes"][REJECTED] == 1
        assert step["outcomes"][TIMEOUT] == 1
        # Rejected/timed-out submissions never enter the latency sample.
        assert step["latency_ms"]["count"] == 2
        assert step["hit_ratio"] == pytest.approx(0.5)
        # Served queries at 2 per wall second.
        assert step["achieved_qps"] == pytest.approx(2.0)
        # Time-weighted: (0.10 + 0.02 stage seconds) / 0.12 wall seconds.
        assert step["stage_sum_frac"] == pytest.approx(1.0)
        # Only observed stages appear.
        assert set(step["stages_ms"]) == {"admission", "lookup", "execute"}

    def test_nearest_rank_percentile(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.99) == 4.0
        assert _percentile([5.0], 0.01) == 5.0


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def report():
    return run_loadgen(small_config())


class TestRunLoadgen:
    def test_report_shape_and_stage_coverage(self, report):
        assert report["slo_version"] == 1
        assert [step["label"] for step in report["steps"]] == [
            "closed-1w", "closed-2w",
        ]
        for step in report["steps"]:
            assert step["queries"] == 6
            assert len(step["schedule"]) == 6
            assert set(step["schedule"]) <= set(report["pool"])
            assert sum(step["outcomes"].values()) == 6
            assert step["latency_ms"]["count"] >= 1
            for quantiles in step["stages_ms"].values():
                assert {"p50", "p90", "p99"} <= set(quantiles)
            # The acceptance bar: stage sums explain end-to-end latency.
            assert 0.95 <= step["stage_sum_frac"] <= 1.05

    def test_same_seed_reports_are_identical_modulo_timings(self, report):
        again = run_loadgen(small_config())
        assert strip_timings(report) == strip_timings(again)
        # And the schedule really is part of what is compared.
        assert strip_timings(report)["steps"][0]["schedule"] == (
            report["steps"][0]["schedule"]
        )

    def test_different_seed_changes_the_schedule(self, report):
        other = run_loadgen(small_config(seed=18, steps=(1,)))
        assert (
            other["steps"][0]["schedule"] != report["steps"][0]["schedule"]
        )

    def test_strip_timings_removes_every_wall_clock_field(self, report):
        stripped = strip_timings(report)
        for step in stripped["steps"]:
            for key in (
                "duration_s", "achieved_qps", "latency_ms", "stages_ms",
                "stage_sum_frac", "outcomes", "hit_ratio",
            ):
                assert key not in step
        # Round-trips through JSON (what the baseline file comparison sees).
        assert json.loads(json.dumps(stripped)) == stripped

    def test_open_loop_labels_and_offered_rate(self):
        report = run_loadgen(
            small_config(mode="open", steps=(16,), queries_per_step=4)
        )
        step = report["steps"][0]
        assert step["label"] == "open-16qps"
        assert step["offered"] == 16.0

    def test_render_table_lists_every_step(self, report):
        table = render_slo_table(report)
        assert "closed-1w" in table and "closed-2w" in table
        assert "p99ms" in table and "stage%" in table


class TestBaselineGate:
    def test_report_passes_against_itself(self, report):
        problems, diff = check_slo_baseline(report, report)
        assert problems == []
        assert diff.regressions() == []

    def test_schedule_drift_is_flagged(self, report):
        tampered = json.loads(json.dumps(report))
        tampered["steps"][0]["schedule"][0] = "cube:bogus"
        problems, _diff = check_slo_baseline(tampered, report)
        assert any("deterministic fields" in problem for problem in problems)

    def test_latency_blowup_is_flagged_with_attribution(self, report):
        slowed = json.loads(json.dumps(report))
        for step in slowed["steps"]:
            for label in ("p50", "p90", "p99"):
                step["latency_ms"][label] = (
                    step["latency_ms"][label] * 10.0 + 50.0
                )
        problems, diff = check_slo_baseline(slowed, report)
        assert any("SLO regression" in problem for problem in problems)
        assert diff.top_regression() is not None


class TestClosedLoopShutdown:
    """The leaked-client regression: step teardown must join against a
    deadline and fail loudly instead of reporting over live threads."""

    def _fake_pool(self):
        return [("cube:fake", object())]

    def test_leaked_clients_raise_before_any_report(self):
        import threading
        from types import SimpleNamespace

        from repro.bench.loadgen import _run_step

        release = threading.Event()

        class StuckService:
            def submit(self, _expression, timeout_s=None):
                release.wait(10.0)  # ignores its deadline, like a hang
                return SimpleNamespace(outcome=FRESH, wall_s=0.0, stages={})

        try:
            with pytest.raises(LoadgenError, match="still running"):
                _run_step(
                    StuckService(),
                    self._fake_pool(),
                    [0, 0],
                    workers=2,
                    offered_qps=None,
                    timeout_s=0.1,
                    join_deadline_s=0.2,
                )
        finally:
            release.set()

    def test_finished_clients_join_within_the_deadline(self):
        from types import SimpleNamespace

        from repro.bench.loadgen import _run_step

        class QuickService:
            def submit(self, _expression, timeout_s=None):
                return SimpleNamespace(outcome=FRESH, wall_s=0.001, stages={})

        records, elapsed = _run_step(
            QuickService(),
            self._fake_pool(),
            [0, 0, 0],
            workers=2,
            offered_qps=None,
            timeout_s=0.1,
            join_deadline_s=30.0,
        )
        assert len(records) == 3
        assert elapsed < 30.0
