"""Chains whose rounds use *different* detail relations.

Section 3.2: "We use R_k to denote the detail relation at round k. ...
depending on the query, the detail relation may or may not be the same
across all rounds." These tests run a GMDJ chain over two distinct
conceptual tables with different distributions.
"""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, Schema
from repro.warehouse.partition import RoundRobinPartitioner, ValueListPartitioner

FLOW = make_flows(count=250, seed=81)

# A second fact table: per-AS alert events, differently partitioned.
ALERTS_SCHEMA = Schema.of(("SourceAS", INT), ("Severity", INT), ("Cost", FLOAT))


def make_alerts():
    import random

    rng = random.Random(5)
    rows = [
        (rng.randrange(0, 16), rng.randrange(1, 5), float(rng.randrange(1, 100)))
        for _index in range(180)
    ]
    return Relation(ALERTS_SCHEMA, rows)


ALERTS = make_alerts()


def two_table_expression():
    """Per SourceAS: flow stats from Flow, then alert stats from Alerts
    correlated with the flow average."""
    flow_step = MDStep(
        "Flow",
        [
            MDBlock(
                [count_star("flows"), AggSpec("avg", detail.NumBytes, "avg_nb")],
                base.SourceAS == detail.SourceAS,
            )
        ],
    )
    alert_step = MDStep(
        "Alerts",
        [
            MDBlock(
                [count_star("alerts"), AggSpec("sum", detail.Cost, "alert_cost")],
                (base.SourceAS == detail.SourceAS) & (base.flows > 0),
            )
        ],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [flow_step, alert_step])


def build_cluster():
    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned(
        "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 4)
    )
    # Alerts are spread with no distribution knowledge at all.
    cluster.load_partitioned("Alerts", ALERTS, RoundRobinPartitioner(4))
    return cluster


class TestMultiTableChains:
    @pytest.mark.parametrize("options_name,options", [
        ("none", OptimizationOptions.none()),
        ("all", OptimizationOptions.all()),
    ])
    def test_matches_centralized(self, options_name, options):
        cluster = build_cluster()
        expression = two_table_expression()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, options)
        assert_relations_equal(reference, result.relation)
        assert result.respects_theorem2()

    def test_rounds_cannot_chain_across_tables(self):
        cluster = build_cluster()
        result = execute_query(
            cluster,
            two_table_expression(),
            OptimizationOptions(False, True, False, False, False),
        )
        # Different detail tables -> no Corollary-1 chain between them;
        # Proposition 2 still merges the base into the Flow round.
        assert result.stats.round_count == 2

    def test_coalescing_cannot_merge_across_tables(self):
        cluster = build_cluster()
        result = execute_query(
            cluster,
            two_table_expression(),
            OptimizationOptions(True, False, False, False, False),
        )
        assert len(result.plan.rounds) == 2

    def test_per_round_participants_follow_each_table(self):
        cluster = SimulatedCluster.with_sites(4)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 4)
        )
        # Alerts live on only two of the four sites.
        cluster.load_partitioned(
            "Alerts",
            ALERTS,
            RoundRobinPartitioner(2),
            participating=["site0", "site1"],
        )
        expression = two_table_expression()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, OptimizationOptions.none())
        assert_relations_equal(reference, result.relation)
        assert len(result.plan.rounds[0].sites) == 4
        assert len(result.plan.rounds[1].sites) == 2
