"""Unit tests for messages, channels and the cost model."""

import pytest

from repro.errors import NetworkError, SerializationError
from repro.net.channel import Channel, Network
from repro.net.costmodel import FREE, LAN, WAN, CostModel
from repro.net.message import (
    BASE_QUERY,
    HEADER_BYTES,
    SHIP_BASE,
    SUB_RESULT,
    Message,
)
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema

RELATION = Relation(Schema.of(("k", INT),), [(1,), (2,)])


class TestMessage:
    def test_header_only_size(self):
        message = Message(BASE_QUERY, "coordinator", "site0", 0)
        assert message.size_bytes == HEADER_BYTES

    def test_with_relation_round_trips(self):
        message = Message.with_relation(SHIP_BASE, "coordinator", "site0", 1, RELATION)
        assert message.size_bytes > HEADER_BYTES
        assert message.relation().same_rows(RELATION)

    def test_unknown_kind(self):
        with pytest.raises(SerializationError):
            Message("gossip", "a", "b", 0)

    def test_relation_on_empty_payload(self):
        with pytest.raises(SerializationError):
            Message(BASE_QUERY, "a", "b", 0).relation()


class TestChannel:
    def test_byte_accounting_by_direction(self):
        channel = Channel("site0")
        down = Message.with_relation(SHIP_BASE, "coordinator", "site0", 1, RELATION)
        channel.send_to_site(down)
        assert channel.downstream.bytes == down.size_bytes
        assert channel.upstream.bytes == 0

        received = channel.receive_at_site()
        assert received is down

        up = Message.with_relation(SUB_RESULT, "site0", "coordinator", 1, RELATION)
        channel.send_to_coordinator(up)
        assert channel.upstream.bytes == up.size_bytes
        assert channel.total_bytes == down.size_bytes + up.size_bytes

    def test_per_round_accounting(self):
        channel = Channel("site0")
        for round_index in (1, 1, 2):
            channel.send_to_site(
                Message(BASE_QUERY, "coordinator", "site0", round_index)
            )
        assert channel.downstream.by_round[1] == 2 * HEADER_BYTES
        assert channel.downstream.by_round[2] == HEADER_BYTES

    def test_bytes_in_round_accessor(self):
        channel = Channel("site0")
        for round_index in (1, 1, 2):
            channel.send_to_site(
                Message(BASE_QUERY, "coordinator", "site0", round_index)
            )
        assert channel.downstream.bytes_in_round(1) == 2 * HEADER_BYTES
        assert channel.downstream.bytes_in_round(2) == HEADER_BYTES
        assert channel.downstream.bytes_in_round(99) == 0
        assert channel.upstream.bytes_in_round(1) == 0
        assert channel.downstream.by_round == {
            1: 2 * HEADER_BYTES, 2: HEADER_BYTES
        }

    def test_accounting_lands_in_shared_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        channel = Channel("site0", metrics=registry)
        down = Message.with_relation(SHIP_BASE, "coordinator", "site0", 1, RELATION)
        channel.send_to_site(down)
        assert (
            registry.value_of("net.bytes", direction="down", site="site0")
            == down.size_bytes
        )
        assert registry.value_of("net.messages", direction="down", site="site0") == 1
        assert (
            registry.value_of(
                "net.round.bytes", direction="down", round=1, site="site0"
            )
            == down.size_bytes
        )
        assert registry.value_of("net.bytes", direction="up", site="site0") == 0

    def test_misaddressed_messages_rejected(self):
        channel = Channel("site0")
        with pytest.raises(NetworkError):
            channel.send_to_site(Message(BASE_QUERY, "coordinator", "site1", 0))
        with pytest.raises(NetworkError):
            channel.send_to_coordinator(Message(SUB_RESULT, "site1", "coordinator", 0))

    def test_receive_empty_raises(self):
        channel = Channel("site0")
        with pytest.raises(NetworkError):
            channel.receive_at_site()
        with pytest.raises(NetworkError):
            channel.receive_at_coordinator()

    def test_fifo_order(self):
        channel = Channel("site0")
        first = Message(BASE_QUERY, "coordinator", "site0", 0)
        second = Message(BASE_QUERY, "coordinator", "site0", 1)
        channel.send_to_site(first)
        channel.send_to_site(second)
        assert channel.receive_at_site() is first
        assert channel.receive_at_site() is second


class TestNetwork:
    def test_channels_per_site(self):
        network = Network(["site0", "site1"])
        assert network.site_ids == ("site0", "site1")
        assert network.channel("site0") is not network.channel("site1")

    def test_unknown_site(self):
        with pytest.raises(NetworkError):
            Network(["site0"]).channel("nope")

    def test_empty_network_rejected(self):
        with pytest.raises(NetworkError):
            Network([])

    def test_totals_and_directions(self):
        network = Network(["site0", "site1"])
        message = Message.with_relation(SHIP_BASE, "coordinator", "site0", 1, RELATION)
        network.channel("site0").send_to_site(message)
        up = Message(SUB_RESULT, "site1", "coordinator", 1)
        network.channel("site1").send_to_coordinator(up)
        down_bytes, up_bytes = network.bytes_by_direction()
        assert down_bytes == message.size_bytes
        assert up_bytes == up.size_bytes
        assert network.total_bytes() == down_bytes + up_bytes

    def test_round_bytes(self):
        network = Network(["site0"])
        network.channel("site0").send_to_site(
            Message(BASE_QUERY, "coordinator", "site0", 2)
        )
        assert network.round_bytes(2) == HEADER_BYTES
        assert network.round_bytes(2, "site0") == HEADER_BYTES
        assert network.round_bytes(1) == 0


class TestCostModel:
    def test_affine_pricing(self):
        model = CostModel(latency_s=0.01, bandwidth_bytes_per_s=1000)
        assert model.transfer_time(0) == pytest.approx(0.01)
        assert model.transfer_time(1000) == pytest.approx(1.01)

    def test_presets_ordering(self):
        size = 10_000
        assert FREE.transfer_time(size) == 0.0
        assert LAN.transfer_time(size) < WAN.transfer_time(size)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(latency_s=-1)
        with pytest.raises(ValueError):
            CostModel(bandwidth_bytes_per_s=0)
