"""Unit tests for the observability layer: tracer, metrics, events, timeline."""

import pytest

from repro.errors import ObservabilityError, TraceSchemaError
from repro.obs import (
    GLOBAL_REGISTRY,
    NULL_TRACER,
    SCHEMA_VERSION,
    EventLog,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    activate,
    active_registry,
    build_trace,
    render_timeline,
    timeline_totals,
)
from repro.obs.metrics import BYTES_BUCKETS, Counter, Gauge, Histogram


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query", kind="query", sites=2) as span:
            pass
        assert span.name == "query"
        assert span.kind == "query"
        assert span.attributes == {"sites": 2}
        assert span.start_s == 1.0
        assert span.end_s == 2.0
        assert span.duration_s == 1.0
        assert span.parent_id is None

    def test_nesting_via_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query") as outer:
            with tracer.span("round") as middle:
                with tracer.span("round.encode") as inner:
                    pass
            with tracer.span("round") as sibling:
                pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert sibling.parent_id == outer.span_id
        assert tracer.children_of(outer) == [middle, sibling]
        assert [span.name for span in tracer.spans] == [
            "query", "round", "round.encode", "round",
        ]

    def test_open_span_duration_is_zero(self):
        tracer = Tracer(clock=FakeClock())
        handle = tracer.span("query")
        span = handle.__enter__()
        assert span.duration_s == 0.0
        assert tracer.finished() == []
        handle.__exit__(None, None, None)
        assert tracer.finished() == [span]

    def test_error_marks_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("round") as span:
                raise ValueError("boom")
        assert span.attributes["error"] is True
        assert span.end_s is not None

    def test_queries(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round"):
            pass
        with tracer.span("round"):
            pass
        assert len(tracer.spans_named("round")) == 2
        assert tracer.total_s("round") == pytest.approx(2.0)
        assert tracer.total_s("nothing") == 0.0

    def test_set_is_chainable(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round") as span:
            assert span.set(bytes=10) is span
        assert span.attributes["bytes"] == 10

    def test_span_dict_round_trip(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round.merge", kind="coordinator", rows=3) as span:
            pass
        assert Span.from_dict(span.to_dict()) == span

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == ()
        with NULL_TRACER.span("query", kind="query", sites=9) as span:
            assert span.set(bytes=1) is span
        assert NULL_TRACER.spans == ()
        # The handle is shared: no allocation per span when tracing is off.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        assert NullTracer() is not NULL_TRACER  # but instances stay stateless


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ObservabilityError):
            counter.inc(-1)
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(-1.0)
        assert gauge.value == 1.5

    def test_gauge_set_and_snapshot_take_the_metric_lock(self):
        """``set``/``snapshot`` must use the same lock as ``add``'s
        read-modify-write — an unlocked ``set`` racing an ``add`` is
        silently lost, an unlocked ``snapshot`` can observe a torn write.

        Regression test: ``set`` (and ``snapshot``) used to write/read
        ``value`` without acquiring ``_lock``.
        """

        class RecordingLock:
            def __init__(self):
                self.acquisitions = 0

            def __enter__(self):
                self.acquisitions += 1

            def __exit__(self, *exc):
                return False

        gauge = Gauge("g")
        lock = RecordingLock()
        gauge._lock = lock
        gauge.set(5.0)
        assert lock.acquisitions == 1, "Gauge.set must hold the metric lock"
        gauge.add(2.0)
        assert lock.acquisitions == 2
        assert gauge.snapshot() == {"type": "gauge", "value": 7.0}
        assert lock.acquisitions == 3, "Gauge.snapshot must hold the metric lock"

    def test_histogram_buckets(self):
        histogram = Histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]  # last is the overflow bucket
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(105.5)

    def test_histogram_boundary_is_inclusive_le(self):
        # Prometheus `le` semantics: a value exactly equal to a boundary
        # belongs in that bucket, not the next one.
        histogram = Histogram("h", boundaries=(1.0, 10.0))
        histogram.observe(1.0)
        histogram.observe(10.0)
        assert histogram.counts == [1, 1, 0]
        histogram.observe(10.000001)
        assert histogram.counts == [1, 1, 1]

    def test_histogram_cumulative_counts(self):
        histogram = Histogram("h", boundaries=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        # Per-bucket counts stay per-bucket; the cumulative view is what
        # Prometheus _bucket{le=...} series carry, ending at the total.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.cumulative_counts() == [2, 3, 4, 5]
        assert histogram.cumulative_counts()[-1] == histogram.count

    def test_histogram_quantile_interpolates(self):
        from repro.obs import histogram_quantile

        boundaries = (1.0, 2.0, 4.0)
        cumulative = [0, 10, 10]  # all 10 observations in (1, 2]
        assert histogram_quantile(boundaries, cumulative, 0.5) == pytest.approx(1.5)
        assert histogram_quantile(boundaries, cumulative, 1.0) == pytest.approx(2.0)
        # Empty series and q clamping stay defined.
        assert histogram_quantile(boundaries, [0, 0, 0], 0.9) == 0.0
        assert histogram_quantile((), [], 0.9) == 0.0

    def test_histogram_quantile_overflow_clamps(self):
        from repro.obs import histogram_quantile

        # Observations past the last boundary cannot be located better
        # than "at the last finite boundary".
        boundaries = (1.0, 2.0)
        cumulative = [0, 0, 5]  # trailing entry = total incl. overflow
        assert histogram_quantile(boundaries, cumulative, 0.99) == 2.0

    def test_histogram_validation(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", boundaries=())
        with pytest.raises(ObservabilityError):
            Histogram("h", boundaries=(2.0, 1.0))

    def test_registry_identity_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("net.bytes", site="site0", direction="down")
        # Same identity regardless of label order.
        assert registry.counter("net.bytes", direction="down", site="site0") is counter
        assert counter.name == "net.bytes{direction=down,site=site0}"
        counter.inc(7)
        assert registry.value_of("net.bytes", site="site0", direction="down") == 7
        assert registry.value_of("net.bytes", site="other") == 0
        assert len(registry) == 1

    def test_registry_type_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_sum_matching(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes", direction="down").inc(10)
        registry.counter("net.bytes", direction="up").inc(3)
        registry.counter("net.bytes.other").inc(100)
        assert registry.sum_matching("net.bytes{") == 13

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", boundaries=BYTES_BUCKETS).observe(100.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["h"]["type"] == "histogram"
        assert sum(snapshot["h"]["counts"]) == 1

    def test_activate_scopes_the_active_registry(self):
        assert active_registry() is GLOBAL_REGISTRY
        scoped = MetricsRegistry()
        with activate(scoped) as registry:
            assert registry is scoped
            assert active_registry() is scoped
        assert active_registry() is GLOBAL_REGISTRY

    def test_activate_restores_on_error(self):
        scoped = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with activate(scoped):
                raise RuntimeError("boom")
        assert active_registry() is GLOBAL_REGISTRY


# ---------------------------------------------------------------------------
# Event log (JSONL schema)
# ---------------------------------------------------------------------------


def small_trace() -> EventLog:
    tracer = Tracer(clock=FakeClock())
    with tracer.span("query", kind="query"):
        with tracer.span("round", kind="round", index=0):
            pass
    registry = MetricsRegistry()
    registry.counter("gmdj.tuples_emitted").inc(12)
    log = build_trace(tracer, registry)
    return log


class TestEventLog:
    def test_build_trace_contents(self):
        log = small_trace()
        assert len(log.records_of("span")) == 2
        assert len(log.records_of("metric")) == 1
        names = [span.name for span in log.spans()]
        assert names == ["query", "round"]

    def test_header_and_round_trip(self):
        log = small_trace()
        text = log.dumps()
        first_line = text.splitlines()[0]
        assert '"record": "header"' in first_line
        assert f'"schema_version": {SCHEMA_VERSION}' in first_line
        assert EventLog.loads(text) == log

    def test_dump_load_file(self, tmp_path):
        log = small_trace()
        path = tmp_path / "trace.jsonl"
        log.dump(path)
        assert EventLog.load(path) == log

    def test_null_tracer_contributes_no_spans(self):
        log = build_trace(NULL_TRACER, MetricsRegistry())
        assert log.records_of("span") == []

    def test_rejects_bad_version(self):
        log = small_trace()
        text = log.dumps().replace(
            f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 999'
        )
        with pytest.raises(TraceSchemaError):
            EventLog.loads(text)
        with pytest.raises(TraceSchemaError):
            EventLog(schema_version=999).validate()

    def test_rejects_missing_header(self):
        with pytest.raises(TraceSchemaError):
            EventLog.loads("")
        with pytest.raises(TraceSchemaError):
            EventLog.loads('{"record": "span"}')

    def test_rejects_malformed_lines(self):
        header = small_trace().dumps().splitlines()[0]
        with pytest.raises(TraceSchemaError):
            EventLog.loads(header + "\nnot json")
        with pytest.raises(TraceSchemaError):
            EventLog.loads(header + '\n{"no_tag": 1}')

    def test_validates_record_shapes(self):
        log = EventLog()
        log.append("span", name="x")  # missing the other required fields
        with pytest.raises(TraceSchemaError):
            log.validate()
        log = EventLog()
        log.append("metric", name="m", type="teapot", value=1)
        with pytest.raises(TraceSchemaError):
            log.validate()
        log = EventLog()
        log.append("stats", bytes_total=0)  # missing "rounds"
        with pytest.raises(TraceSchemaError):
            log.validate()

    def test_unknown_record_types_survive(self):
        log = EventLog()
        log.append("future-extension", payload=[1, 2, 3])
        log.validate()
        assert EventLog.loads(log.dumps()) == log


# ---------------------------------------------------------------------------
# Timeline rendering
# ---------------------------------------------------------------------------


class TestTimeline:
    @staticmethod
    def fake_stats():
        from repro.distributed.stats import ExecutionStats

        stats = ExecutionStats()
        round_stats = stats.new_round("md", "steps=1 sites=2")
        round_stats.site("site0").bytes_down = 100
        round_stats.site("site0").bytes_up = 200
        round_stats.site("site0").compute_s = 0.004
        round_stats.site("site0").tuples_up = 5
        round_stats.site("site1").bytes_down = 50
        round_stats.site("site1").compute_s = 0.001
        round_stats.coordinator_compute_s = 0.002
        return stats

    def test_totals_come_from_stats(self):
        from repro.net.costmodel import WAN

        stats = self.fake_stats()
        totals = timeline_totals(stats, WAN)
        assert totals["bytes_total"] == stats.bytes_total == 350
        assert totals["bytes_down"] == stats.bytes_down
        assert totals["bytes_up"] == stats.bytes_up
        assert totals["tuples_total"] == stats.tuples_total
        assert totals["site_compute_s"] == stats.site_compute_s()
        assert totals["coordinator_compute_s"] == stats.coordinator_compute_s()
        assert totals["total_s"] == stats.breakdown(WAN)["total_s"]

    def test_render_contains_rows_and_footer(self):
        text = render_timeline(self.fake_stats())
        assert "round 0 [md]" in text
        assert "site0" in text and "site1" in text
        assert "merge" in text and "#" in text
        assert "<" in text and "=" in text and ">" in text
        assert "totals: rounds=1 bytes=350 (down=150 up=200) tuples=5" in text
        assert "site_compute=0.004000s" in text

    def test_render_empty_stats(self):
        from repro.distributed.stats import ExecutionStats

        text = render_timeline(ExecutionStats())
        assert "totals: rounds=0 bytes=0" in text
