"""End-to-end observability: spans from real runs, breakdown additivity,
stats-vs-network cross-checks, and the tracing-overhead harness."""

import pytest

from conftest import make_flows
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
)
from repro.distributed.stats import verify_against_network
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.net.costmodel import LAN, WAN
from repro.obs import EventLog, MetricsRegistry, Tracer, build_trace
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail

FLOW = make_flows(count=300, seed=17)
KEY = base.SourceAS == detail.SourceAS


def expression() -> GMDJExpression:
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )
    outer = MDStep(
        "Flow", [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.m))]
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])


def build_cluster(sites: int) -> SimulatedCluster:
    from repro.warehouse.partition import ValueListPartitioner

    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned(
        "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), sites)
    )
    return cluster


def traced_run(sites: int = 4, options: OptimizationOptions = None):
    cluster = build_cluster(sites)
    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    result = execute_query(
        cluster,
        expression(),
        options or OptimizationOptions.none(),
        tracer=tracer,
        metrics=registry,
    )
    return cluster, tracer, registry, result


class TestEvaluatorSpans:
    def test_span_taxonomy(self):
        _cluster, tracer, _registry, result = traced_run()
        queries = tracer.spans_named("query")
        assert len(queries) == 1
        rounds = tracer.spans_named("round")
        # One "round" span per ExecutionStats round (base + MD rounds).
        assert len(rounds) == result.stats.round_count
        assert {span.parent_id for span in rounds} == {queries[0].span_id}
        for name in ("round.encode", "round.evaluate", "round.decode", "round.merge"):
            spans = tracer.spans_named(name)
            assert spans, f"no {name} spans recorded"
            round_ids = {span.span_id for span in rounds}
            assert all(span.parent_id in round_ids for span in spans)
        assert all(span.end_s is not None for span in tracer.spans)

    def test_round_span_attributes_match_stats(self):
        _cluster, tracer, _registry, result = traced_run()
        md_spans = [
            span for span in tracer.spans_named("round")
            if span.attributes.get("round_kind") != "base"
        ]
        md_rounds = [s for s in result.stats.rounds if s.kind != "base"]
        assert len(md_spans) == len(md_rounds)
        for span, round_stats in zip(md_spans, md_rounds):
            assert span.attributes["index"] == round_stats.index
            assert span.attributes["bytes_down"] == round_stats.bytes_down
            assert span.attributes["bytes_up"] == round_stats.bytes_up

    def test_evaluate_spans_carry_site_kind(self):
        _cluster, tracer, _registry, _result = traced_run()
        evaluates = tracer.spans_named("round.evaluate")
        assert all(span.kind == "site" for span in evaluates)
        merges = tracer.spans_named("round.merge")
        assert all(span.kind == "coordinator" for span in merges)

    def test_untraced_run_records_nothing(self):
        cluster = build_cluster(2)
        result = execute_query(cluster, expression(), OptimizationOptions.none())
        assert result.stats.round_count >= 2  # ran fine with NULL_TRACER

    def test_operator_counters_in_run_registry(self):
        _cluster, _tracer, registry, result = traced_run()
        examined = registry.value_of("gmdj.tuples_examined")
        emitted = registry.value_of("gmdj.tuples_emitted")
        assert examined > 0
        assert emitted >= len(result.relation)

    def test_network_counters_match_stats(self):
        _cluster, _tracer, registry, result = traced_run()
        assert registry.sum_matching("net.bytes{direction=down") == (
            result.stats.bytes_down
        )
        assert registry.sum_matching("net.bytes{direction=up") == (
            result.stats.bytes_up
        )


class TestBreakdownAdditivity:
    """Figure-5-style additive breakdown vs the exact round critical path.

    The additive breakdown (site + coordinator + communication) must
    equal the exact response time up to the documented per-round overlap
    tolerance — and never undershoot it.
    """

    @pytest.mark.parametrize("sites", [1, 4, 8])
    @pytest.mark.parametrize("model", [WAN, LAN], ids=["wan", "lan"])
    def test_additive_equals_exact_within_tolerance(self, sites, model):
        cluster = build_cluster(sites)
        result = execute_query(cluster, expression(), OptimizationOptions.none())
        stats = result.stats
        additive = stats.breakdown(model)["total_s"]
        exact = stats.response_time_s(model)
        tolerance = stats.overlap_tolerance_s(model)
        assert additive >= exact - 1e-12
        assert additive - exact <= tolerance + 1e-12

    @pytest.mark.parametrize("sites", [1, 4, 8])
    def test_breakdown_components(self, sites):
        cluster = build_cluster(sites)
        result = execute_query(cluster, expression(), OptimizationOptions.all())
        breakdown = result.stats.breakdown(WAN)
        assert breakdown["total_s"] == pytest.approx(
            breakdown["site_compute_s"]
            + breakdown["coordinator_compute_s"]
            + breakdown["communication_s"]
        )


class TestStatsNetworkCrossCheck:
    def test_agreement_on_real_run(self):
        cluster, _tracer, _registry, result = traced_run()
        assert verify_against_network(result.stats, cluster.network) == []

    def test_detects_divergence(self):
        cluster, _tracer, _registry, result = traced_run()
        result.stats.rounds[-1].site(cluster.site_ids[0]).bytes_up += 1
        problems = verify_against_network(result.stats, cluster.network)
        assert problems
        assert any("bytes_up" in problem for problem in problems)


class TestTraceExport:
    def test_run_trace_round_trips(self, tmp_path):
        _cluster, tracer, registry, result = traced_run()
        log = build_trace(tracer, registry, result.stats, model=WAN)
        log.validate()
        assert len(log.records_of("span")) == len(tracer.spans)
        assert len(log.records_of("stats")) == 1
        stats_record = log.records_of("stats")[0]
        assert stats_record["bytes_total"] == result.stats.bytes_total
        assert stats_record["breakdown"]["total_s"] == pytest.approx(
            result.stats.breakdown(WAN)["total_s"]
        )
        path = tmp_path / "run.jsonl"
        log.dump(path)
        assert EventLog.load(path) == log


class TestHarnessTracing:
    def test_run_traced(self):
        from repro.bench.harness import run_traced

        cluster = build_cluster(2)
        result, log = run_traced(
            cluster, expression(), OptimizationOptions.all()
        )
        log.validate()
        assert log.records_of("span")
        assert log.records_of("stats")[0]["bytes_total"] == result.stats.bytes_total

    def test_measure_tracing_overhead(self):
        from repro.bench.harness import ShapeCheckError, measure_tracing_overhead

        cluster = build_cluster(2)
        report = measure_tracing_overhead(
            cluster, expression(), OptimizationOptions.all(), repetitions=2
        )
        assert set(report) == {
            "untraced_s", "traced_s", "overhead_s", "overhead_frac", "repetitions",
        }
        assert report["untraced_s"] > 0
        assert report["traced_s"] > 0
        assert report["repetitions"] == 2
        with pytest.raises(ShapeCheckError):
            measure_tracing_overhead(
                cluster, expression(), OptimizationOptions.all(), repetitions=0
            )

    def test_benchmark_report_includes_overhead(self, tmp_path):
        from repro.bench.harness import benchmark_report

        trace_path = tmp_path / "bench.jsonl"
        report = benchmark_report(
            sites=2,
            scale=0.0002,
            emit_trace=str(trace_path),
            overhead_repetitions=1,
        )
        assert "tracing_overhead" in report
        assert set(report["arms"]) == {"no_optimizations", "all_optimizations"}
        log = EventLog.load(trace_path)
        log.validate()
        assert report["trace_records"] == len(log)
