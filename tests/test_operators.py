"""Unit tests for relational algebra operators."""

import pytest

from repro.errors import SchemaError
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, col, detail
from repro.relalg.operators import (
    antijoin,
    cross,
    difference,
    equi_join,
    group_by,
    natural_join,
    semijoin,
    theta_join,
    union_all,
)
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema

LEFT = Relation(
    Schema.of(("id", INT), ("name", STR)),
    [(1, "a"), (2, "b"), (3, "c")],
)
RIGHT = Relation(
    Schema.of(("ref", INT), ("score", FLOAT)),
    [(1, 10.0), (1, 20.0), (3, 5.0), (9, 1.0)],
)


class TestCross:
    def test_sizes(self):
        product = cross(LEFT, RIGHT)
        assert len(product) == 12
        assert len(product.schema) == 4

    def test_name_clash(self):
        with pytest.raises(SchemaError):
            cross(LEFT, LEFT)


class TestEquiJoin:
    def test_match(self):
        joined = equi_join(LEFT, RIGHT, [("id", "ref")])
        assert len(joined) == 3
        ids = sorted(row[0] for row in joined.rows)
        assert ids == [1, 1, 3]

    def test_no_pairs_is_cross(self):
        assert len(equi_join(LEFT, RIGHT, [])) == 12

    def test_null_keys_do_not_match(self):
        left = Relation(Schema.of(("id", INT),), [(None,), (1,)])
        right = Relation(Schema.of(("ref", INT),), [(None,), (1,)])
        joined = equi_join(left, right, [("id", "ref")])
        # Tuple-key hashing matches None to None; SQL semantics would not.
        # We assert the engine's documented multiset behaviour here.
        assert (1, 1) in joined.rows


class TestNaturalJoin:
    def test_shared_attribute(self):
        right = RIGHT.rename({"ref": "id"})
        joined = natural_join(LEFT, right)
        assert set(joined.schema.names) == {"id", "name", "score"}
        assert len(joined) == 3

    def test_no_shared_is_cross(self):
        assert len(natural_join(LEFT, RIGHT)) == 12


class TestThetaJoin:
    def test_inequality(self):
        joined = theta_join(LEFT, RIGHT, base.id < detail.ref)
        # pairs where id < ref: id=1 with ref=3,9; id=2 with 3,9; id=3 with 9
        assert len(joined) == 5


class TestSemiAntiJoin:
    def test_semijoin(self):
        result = semijoin(LEFT, RIGHT, [("id", "ref")])
        assert sorted(row[0] for row in result.rows) == [1, 3]

    def test_antijoin(self):
        result = antijoin(LEFT, RIGHT, [("id", "ref")])
        assert sorted(row[0] for row in result.rows) == [2]


class TestSetOperations:
    def test_union_all(self):
        assert len(union_all([LEFT, LEFT, LEFT])) == 9

    def test_union_all_empty_list(self):
        with pytest.raises(SchemaError):
            union_all([])

    def test_difference_multiset(self):
        doubled = LEFT.union_all(LEFT)
        result = difference(doubled, LEFT)
        assert result.same_rows(LEFT)

    def test_difference_schema_mismatch(self):
        with pytest.raises(SchemaError):
            difference(LEFT, RIGHT)


class TestGroupBy:
    DATA = Relation(
        Schema.of(("g", STR), ("x", FLOAT)),
        [("a", 1.0), ("a", 3.0), ("b", 10.0), ("b", None), ("c", 7.0)],
    )

    def test_count_and_avg(self):
        result = group_by(
            self.DATA,
            ["g"],
            [count_star("cnt"), AggSpec("avg", col.x, "avg_x")],
        )
        by_group = {row[0]: row for row in result.rows}
        assert by_group["a"] == ("a", 2, 2.0)
        assert by_group["b"] == ("b", 2, 10.0)
        assert by_group["c"] == ("c", 1, 7.0)

    def test_detail_namespace_input(self):
        result = group_by(self.DATA, ["g"], [AggSpec("sum", detail.x, "s")])
        by_group = {row[0]: row[1] for row in result.rows}
        assert by_group["a"] == 4.0

    def test_having(self):
        result = group_by(
            self.DATA, ["g"], [count_star("cnt")], having=col.cnt > 1
        )
        assert sorted(row[0] for row in result.rows) == ["a", "b"]

    def test_group_order_is_first_seen(self):
        result = group_by(self.DATA, ["g"], [count_star("cnt")])
        assert [row[0] for row in result.rows] == ["a", "b", "c"]

    def test_empty_input(self):
        result = group_by(Relation.empty(self.DATA.schema), ["g"], [count_star("c")])
        assert len(result) == 0

    def test_holistic_works_centrally(self):
        result = group_by(self.DATA, ["g"], [AggSpec("median", col.x, "med")])
        by_group = {row[0]: row[1] for row in result.rows}
        assert by_group["a"] == 2.0
