"""Unit tests for Egil, the distributed-plan optimizer."""

import pytest

from repro.errors import HolisticAggregateError, PlanError
from repro.distributed.optimizer import OptimizationOptions, plan_query
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, LiteralBase, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema
from repro.warehouse.catalog import DistributionCatalog

KEY = (base.nation == detail.nation) & (base.cust == detail.cust)
SITES = ("s0", "s1", "s2")


def make_catalog(partition_attrs=("nation",), with_phi=True):
    catalog = DistributionCatalog()
    phi_by_site = None
    if with_phi:
        phi_by_site = {
            site: detail.nation.is_in([index, index + 10])
            for index, site in enumerate(SITES)
        }
    catalog.register("T", SITES, phi_by_site, partition_attrs)
    return catalog


def correlated_expression():
    inner = MDStep(
        "T",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.v, "m")], KEY)],
    )
    outer = MDStep("T", [MDBlock([count_star("big")], KEY & (detail.v >= base.m))])
    return GMDJExpression(DistinctBase("T", ["nation", "cust"]), [inner, outer])


def independent_expression():
    first = MDStep("T", [MDBlock([count_star("c1")], KEY)])
    second = MDStep("T", [MDBlock([count_star("c2")], KEY & (detail.v > 0))])
    return GMDJExpression(DistinctBase("T", ["nation", "cust"]), [first, second])


class TestBaseline:
    def test_no_optimizations_plan(self):
        plan = plan_query(
            correlated_expression(), make_catalog(), OptimizationOptions.none()
        )
        assert len(plan.rounds) == 2
        assert plan.synchronization_count == 3
        assert not plan.base.merged_into_chain
        for md_round in plan.rounds:
            assert not md_round.independent_reduction
            assert not md_round.ship_filters
            assert md_round.sites == SITES

    def test_holistic_rejected(self):
        step = MDStep(
            "T", [MDBlock([AggSpec("median", detail.v, "m")], KEY)]
        )
        expression = GMDJExpression(DistinctBase("T", ["nation", "cust"]), [step])
        with pytest.raises(HolisticAggregateError):
            plan_query(expression, make_catalog(), OptimizationOptions.none())

    def test_unregistered_table_rejected(self):
        with pytest.raises(PlanError):
            plan_query(
                correlated_expression(), DistributionCatalog(), OptimizationOptions.none()
            )


class TestCoalescing:
    def test_independent_steps_merge(self):
        options = OptimizationOptions(
            coalescing=True,
            sync_reduction=False,
            aware_group_reduction=False,
            independent_group_reduction=False,
            site_pruning=False,
        )
        plan = plan_query(independent_expression(), make_catalog(), options)
        assert len(plan.rounds) == 1
        assert len(plan.rounds[0].steps) == 1  # truly merged, not chained
        assert any("coalescing" in note for note in plan.notes)

    def test_correlated_steps_do_not_merge(self):
        options = OptimizationOptions(
            coalescing=True,
            sync_reduction=False,
            aware_group_reduction=False,
            independent_group_reduction=False,
            site_pruning=False,
        )
        plan = plan_query(correlated_expression(), make_catalog(), options)
        assert len(plan.rounds) == 2


class TestSyncReduction:
    OPTIONS = OptimizationOptions(
        coalescing=False,
        sync_reduction=True,
        aware_group_reduction=False,
        independent_group_reduction=False,
        site_pruning=False,
    )

    def test_chain_with_partition_attribute(self):
        plan = plan_query(correlated_expression(), make_catalog(), self.OPTIONS)
        assert len(plan.rounds) == 1
        assert plan.rounds[0].is_chain
        assert plan.base.merged_into_chain
        assert plan.rounds[0].merged_base
        assert plan.synchronization_count == 1

    def test_no_chain_without_partition_attribute(self):
        plan = plan_query(
            correlated_expression(), make_catalog(partition_attrs=()), self.OPTIONS
        )
        assert len(plan.rounds) == 2
        # Proposition 2 still merges the base (theta entails key equality).
        assert plan.base.merged_into_chain
        assert plan.synchronization_count == 2

    def test_no_merge_without_key_entailment(self):
        # Group on cust only; conditions equate nation+cust, entailing the
        # key, so instead build a query whose condition misses the key.
        step = MDStep("T", [MDBlock([count_star("c")], base.nation == detail.nation)])
        expression = GMDJExpression(DistinctBase("T", ["nation", "cust"]), [step])
        plan = plan_query(expression, make_catalog(), self.OPTIONS)
        assert not plan.base.merged_into_chain

    def test_literal_base_never_merges(self):
        literal = Relation(
            Schema.of(("nation", INT), ("cust", INT)), [(0, 0), (1, 1)]
        )
        step = MDStep("T", [MDBlock([count_star("c")], KEY)])
        expression = GMDJExpression(LiteralBase(literal, ["nation", "cust"]), [step])
        plan = plan_query(expression, make_catalog(), self.OPTIONS)
        assert not plan.base.merged_into_chain
        assert not plan.base.is_distributed

    def test_partition_attribute_via_fd(self):
        catalog = make_catalog(partition_attrs=("nation",))
        catalog.add_functional_dependency("cust", "nation")
        # Condition equating only cust: chains because cust -> nation.
        condition = base.cust == detail.cust
        steps = [
            MDStep("T", [MDBlock([count_star("c1")], condition)]),
            MDStep(
                "T", [MDBlock([count_star("c2")], condition & (detail.v > base.c1))]
            ),
        ]
        expression = GMDJExpression(DistinctBase("T", ["cust"]), steps)
        plan = plan_query(expression, catalog, self.OPTIONS)
        assert len(plan.rounds) == 1
        assert plan.rounds[0].is_chain


class TestGroupReductions:
    def test_independent_reduction_flag(self):
        options = OptimizationOptions(
            coalescing=False,
            sync_reduction=False,
            aware_group_reduction=False,
            independent_group_reduction=True,
            site_pruning=False,
        )
        plan = plan_query(correlated_expression(), make_catalog(), options)
        assert all(md_round.independent_reduction for md_round in plan.rounds)

    def test_aware_filters_derived_from_phi(self):
        options = OptimizationOptions(
            coalescing=False,
            sync_reduction=False,
            aware_group_reduction=True,
            independent_group_reduction=False,
            site_pruning=False,
        )
        plan = plan_query(correlated_expression(), make_catalog(), options)
        first_round = plan.rounds[0]
        for site in SITES:
            assert first_round.ship_filter(site) is not None
        assert any("aware group reduction" in note for note in plan.notes)

    def test_aware_filters_absent_without_phi(self):
        options = OptimizationOptions(
            coalescing=False,
            sync_reduction=False,
            aware_group_reduction=True,
            independent_group_reduction=False,
            site_pruning=False,
        )
        plan = plan_query(
            correlated_expression(), make_catalog(with_phi=False), options
        )
        assert all(not md_round.ship_filters for md_round in plan.rounds)


class TestSitePruning:
    def test_impossible_sites_dropped(self):
        options = OptimizationOptions(
            coalescing=False,
            sync_reduction=False,
            aware_group_reduction=False,
            independent_group_reduction=False,
            site_pruning=True,
        )
        step = MDStep(
            "T",
            [MDBlock([count_star("c")], KEY & (detail.nation > 9))],
        )
        expression = GMDJExpression(DistinctBase("T", ["nation", "cust"]), [step])
        plan = plan_query(expression, make_catalog(), options)
        # phi sets are {0,10}, {1,11}, {2,12}: all contain a value > 9,
        # so none can be pruned by nation > 9...
        assert plan.rounds[0].sites == SITES

        step = MDStep(
            "T",
            [MDBlock([count_star("c")], KEY & (detail.nation > 10))],
        )
        expression = GMDJExpression(DistinctBase("T", ["nation", "cust"]), [step])
        plan = plan_query(expression, make_catalog(), options)
        # site s0 holds nations {0, 10}: cannot satisfy nation > 10.
        assert plan.rounds[0].sites == ("s1", "s2")
