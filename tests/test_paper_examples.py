"""The paper's worked examples (Sections 2 and 4), executable.

Each test transcribes one numbered example from the paper and checks the
behaviour the text claims — these double as documentation tying the
implementation back to the prose.
"""

import pytest

from conftest import assert_relations_equal
from repro.data.flows import FlowConfig, generate_flows, router_partitioner
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
    plan_query,
)
from repro.gmdj.analysis import derive_ship_filter
from repro.queries.olap import QueryBuilder
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import BASE_VAR, base, detail


def example1_expression():
    """Example 1: per (SourceAS, DestAS), total flows and flows whose
    NumBytes exceeds the pair's average — the two-GMDJ chain of Sec 2.2."""
    return (
        QueryBuilder("Flow", keys=["SourceAS", "DestAS"])
        .stage([count_star("cnt1"), AggSpec("sum", detail.NumBytes, "sum1")])
        .stage(
            [count_star("cnt2")],
            extra=detail.NumBytes >= base.sum1 / base.cnt1,
        )
        .build()
    )


def build_cluster(pinned=True):
    config = FlowConfig(
        flow_count=1500, router_count=4, seed=61, as_pinned_to_router=pinned
    )
    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned("Flow", generate_flows(config), router_partitioner(config))
    if pinned:
        # Examples 2/5: every SourceAS passes through one router.
        cluster.catalog.add_functional_dependency("SourceAS", "RouterId")
    return cluster


class TestExample1:
    """Section 2.2: the correlated aggregate query itself."""

    def test_cnt2_counts_above_average_flows(self):
        cluster = build_cluster()
        result = execute_query(
            cluster, example1_expression(), OptimizationOptions.none()
        )
        table = result.relation
        cnt1 = table.schema.position("cnt1")
        sum1 = table.schema.position("sum1")
        cnt2 = table.schema.position("cnt2")
        conceptual = cluster.conceptual_table("Flow")
        src = conceptual.schema.position("SourceAS")
        dst = conceptual.schema.position("DestAS")
        volume = conceptual.schema.position("NumBytes")
        for row in table.rows[:20]:
            group_rows = [
                r for r in conceptual.rows if r[src] == row[0] and r[dst] == row[1]
            ]
            average = sum(r[volume] for r in group_rows) / len(group_rows)
            expected = sum(1 for r in group_rows if r[volume] >= average)
            assert row[cnt1] == len(group_rows)
            assert row[cnt2] == expected
            assert row[sum1] == pytest.approx(sum(r[volume] for r in group_rows))


class TestExample2:
    """Section 4.1: phi = SourceAS in [1, 25] makes the ship filter
    b.SourceAS in [1, 25]."""

    def test_derived_filter(self):
        phi = detail.SourceAS.between(1, 25)
        theta = (base.SourceAS == detail.SourceAS) & (base.DestAS == detail.DestAS)
        ship_filter = derive_ship_filter([theta], phi)
        assert ship_filter is not None
        admit = lambda **row: bool(ship_filter.eval({BASE_VAR: row}))
        assert admit(SourceAS=1, DestAS=9)
        assert admit(SourceAS=25, DestAS=9)
        assert not admit(SourceAS=26, DestAS=9)
        assert not admit(SourceAS=0, DestAS=9)

    def test_revised_arithmetic_condition(self):
        # "assume the condition is revised to be
        #  B.DestAS + B.SourceAS < Flow.SourceAS*2. Then ~psi_i(b)
        #  becomes B.DestAS + B.SourceAS < 50."
        phi = detail.SourceAS.between(1, 25)
        theta = base.DestAS + base.SourceAS < detail.SourceAS * 2
        ship_filter = derive_ship_filter([theta], phi)
        admit = lambda **row: bool(ship_filter.eval({BASE_VAR: row}))
        assert admit(DestAS=24, SourceAS=25)
        assert not admit(DestAS=26, SourceAS=24)


class TestExample4:
    """Section 4.3: Proposition 2 merges the base synchronization,
    cutting the example's synchronizations from three to two."""

    def test_sync_count_drops_three_to_two(self):
        cluster = build_cluster(pinned=False)  # no partition attribute
        naive = plan_query(
            example1_expression(), cluster.catalog, OptimizationOptions.none()
        )
        assert naive.synchronization_count == 3
        merged = plan_query(
            example1_expression(),
            cluster.catalog,
            OptimizationOptions(False, True, False, False, False),
        )
        # Without a partition attribute only Proposition 2 fires: 3 -> 2.
        assert merged.synchronization_count == 2
        assert merged.base.merged_into_chain


class TestExample5:
    """Section 4.3: with SourceAS a partition attribute and (SourceAS,
    DestAS) the key, the whole query evaluates locally with a single
    synchronization at the coordinator."""

    def test_single_synchronization_plan(self):
        cluster = build_cluster(pinned=True)
        plan = plan_query(
            example1_expression(),
            cluster.catalog,
            OptimizationOptions(False, True, False, False, False),
        )
        assert plan.synchronization_count == 1
        assert len(plan.rounds) == 1
        assert plan.rounds[0].is_chain
        assert plan.base.merged_into_chain

    def test_result_identical_to_naive_plan(self):
        cluster = build_cluster(pinned=True)
        naive = execute_query(
            cluster, example1_expression(), OptimizationOptions.none()
        )
        cluster.reset_network()
        optimized = execute_query(
            cluster,
            example1_expression(),
            OptimizationOptions(False, True, False, False, False),
        )
        assert_relations_equal(naive.relation, optimized.relation)
        assert optimized.stats.bytes_total < naive.stats.bytes_total


class TestExample3:
    """Section 4.2: independent group reduction cuts each site's returned
    groups to the 1/k fraction it actually updates."""

    def test_up_traffic_reduction_fraction(self):
        cluster = build_cluster(pinned=True)
        expression = example1_expression()
        plain = execute_query(cluster, expression, OptimizationOptions.none())
        cluster.reset_network()
        reduced = execute_query(
            cluster,
            expression,
            OptimizationOptions(False, False, False, True, False),
        )
        assert_relations_equal(plain.relation, reduced.relation)
        # With SourceAS pinned, each of the 4 sites updates ~1/4 of the
        # groups: the MD-round up-leg drops to about n/k = 1/4.
        plain_up = plain.stats.tuples_up_md()
        reduced_up = reduced.stats.tuples_up_md()
        assert reduced_up < 0.5 * plain_up
