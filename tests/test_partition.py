"""Unit tests for partitioners, including the φᵢ truthfulness contract."""

import pytest

from repro.errors import WarehouseError
from repro.relalg.expressions import DETAIL_VAR
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, Schema
from repro.warehouse.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    ValueListPartitioner,
)

SCHEMA = Schema.of(("a", INT), ("v", FLOAT))
RELATION = Relation(SCHEMA, [(value, float(value)) for value in range(40)])


def assert_phi_truthful(partitioner: Partitioner, relation: Relation):
    """Every row at site i must satisfy φᵢ (Theorem 4's hypothesis)."""
    partitions = partitioner.split(relation)
    for index, partition in enumerate(partitions):
        phi = partitioner.site_predicate(index, relation.schema)
        if phi is None:
            continue
        predicate = phi.compile({DETAIL_VAR: relation.schema})
        for row in partition.rows:
            assert predicate({DETAIL_VAR: row}), (
                f"row {row} at site {index} violates its phi"
            )


def assert_partition_attr_disjoint(partitioner: Partitioner, relation: Relation):
    """Definition 2: partition attribute value sets are pairwise disjoint."""
    partitions = partitioner.split(relation)
    for attribute in partitioner.partition_attributes():
        position = relation.schema.position(attribute)
        value_sets = [
            {row[position] for row in partition.rows} for partition in partitions
        ]
        for i in range(len(value_sets)):
            for j in range(i + 1, len(value_sets)):
                assert not (value_sets[i] & value_sets[j])


class TestValueListPartitioner:
    def test_split_respects_assignment(self):
        partitioner = ValueListPartitioner("a", {value: value % 3 for value in range(40)}, 3)
        partitions = partitioner.split(RELATION)
        assert sum(len(partition) for partition in partitions) == len(RELATION)
        assert all(row[0] % 3 == 0 for row in partitions[0].rows)

    def test_spread_deals_sorted_values(self):
        partitioner = ValueListPartitioner.spread("a", range(40), 4)
        assert partitioner.assignment[0] == 0
        assert partitioner.assignment[1] == 1
        assert partitioner.assignment[4] == 0

    def test_phi_truthful_and_disjoint(self):
        partitioner = ValueListPartitioner.spread("a", range(40), 4)
        assert_phi_truthful(partitioner, RELATION)
        assert_partition_attr_disjoint(partitioner, RELATION)

    def test_values_at_site(self):
        partitioner = ValueListPartitioner.spread("a", range(8), 4)
        assert partitioner.values_at_site(0) == frozenset([0, 4])

    def test_unassigned_value_raises(self):
        partitioner = ValueListPartitioner("a", {0: 0}, 1)
        with pytest.raises(WarehouseError):
            partitioner.split(RELATION)

    def test_invalid_site_in_assignment(self):
        with pytest.raises(WarehouseError):
            ValueListPartitioner("a", {0: 5}, 2)


class TestRangePartitioner:
    def test_boundaries(self):
        partitioner = RangePartitioner("a", [9, 19, 29], 4)
        partitions = partitioner.split(RELATION)
        assert [len(partition) for partition in partitions] == [10, 10, 10, 10]

    def test_phi_truthful_and_disjoint(self):
        partitioner = RangePartitioner("a", [9, 19, 29], 4)
        assert_phi_truthful(partitioner, RELATION)
        assert_partition_attr_disjoint(partitioner, RELATION)

    def test_boundary_count_validated(self):
        with pytest.raises(WarehouseError):
            RangePartitioner("a", [1, 2], 4)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(WarehouseError):
            RangePartitioner("a", [5, 1], 3)

    def test_null_value_rejected(self):
        partitioner = RangePartitioner("a", [5], 2)
        relation = Relation(SCHEMA, [(None, 0.0)])
        with pytest.raises(WarehouseError):
            partitioner.split(relation)


class TestHashPartitioner:
    def test_deterministic_and_complete(self):
        partitioner = HashPartitioner(["a"], 4)
        first = partitioner.split(RELATION)
        second = partitioner.split(RELATION)
        for left, right in zip(first, second):
            assert left.same_rows(right)
        assert sum(len(partition) for partition in first) == len(RELATION)

    def test_single_attribute_is_partition_attribute(self):
        partitioner = HashPartitioner(["a"], 4)
        assert partitioner.partition_attributes() == ("a",)
        assert_partition_attr_disjoint(partitioner, RELATION)

    def test_multi_attribute_has_no_partition_attribute(self):
        assert HashPartitioner(["a", "v"], 4).partition_attributes() == ()

    def test_no_phi(self):
        assert HashPartitioner(["a"], 4).site_predicate(0, SCHEMA) is None

    def test_needs_attributes(self):
        with pytest.raises(WarehouseError):
            HashPartitioner([], 2)


class TestRoundRobinPartitioner:
    def test_even_split(self):
        partitioner = RoundRobinPartitioner(4)
        partitions = partitioner.split(RELATION)
        assert [len(partition) for partition in partitions] == [10, 10, 10, 10]

    def test_no_knowledge(self):
        partitioner = RoundRobinPartitioner(4)
        assert partitioner.site_predicate(0, SCHEMA) is None
        assert partitioner.partition_attributes() == ()

    def test_split_resets_counter(self):
        partitioner = RoundRobinPartitioner(2)
        first = partitioner.split(RELATION)
        second = partitioner.split(RELATION)
        assert first[0].same_rows(second[0])


class TestPartitionerBase:
    def test_needs_at_least_one_site(self):
        with pytest.raises(WarehouseError):
            RoundRobinPartitioner(0)

    def test_bad_assignment_detected(self):
        class Broken(Partitioner):
            def assign(self, row, schema):
                return 99

        with pytest.raises(WarehouseError):
            Broken(2).split(RELATION)
