"""Unit tests for distributed plan structures."""

import pytest

from repro.errors import PlanError
from repro.distributed.plan import BaseRound, MDRound, Plan
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import count_star
from repro.relalg.expressions import base, detail

KEY = base.k == detail.k


def step(output="c", table="T"):
    return MDStep(table, [MDBlock([count_star(output)], KEY)])


def expression(step_count=1):
    return GMDJExpression(
        DistinctBase("T", ["k"]), [step(f"c{i}") for i in range(step_count)]
    )


class TestMDRound:
    def test_needs_steps_and_sites(self):
        with pytest.raises(PlanError):
            MDRound(steps=(), sites=("s0",))
        with pytest.raises(PlanError):
            MDRound(steps=(step(),), sites=())

    def test_chain_requires_single_detail_table(self):
        with pytest.raises(PlanError):
            MDRound(steps=(step("a", "T"), step("b", "U")), sites=("s0",))

    def test_all_blocks_and_conditions(self):
        md_round = MDRound(steps=(step("a"), step("b")), sites=("s0",))
        assert md_round.is_chain
        assert len(md_round.all_blocks()) == 2
        assert len(md_round.conditions()) == 2

    def test_ship_filter_lookup(self):
        md_round = MDRound(
            steps=(step(),), sites=("s0", "s1"), ship_filters={"s0": KEY}
        )
        assert md_round.ship_filter("s0") is KEY
        assert md_round.ship_filter("s1") is None


class TestPlan:
    def test_step_count_must_match(self):
        plan_rounds = (MDRound(steps=(step("c0"),), sites=("s0",)),)
        with pytest.raises(PlanError):
            Plan(expression(2), BaseRound(DistinctBase("T", ["k"]), ("s0",)), plan_rounds)

    def test_merged_base_flag_consistency(self):
        rounds = (MDRound(steps=(step("c0"),), sites=("s0",)),)
        with pytest.raises(PlanError):
            Plan(
                expression(1),
                BaseRound(DistinctBase("T", ["k"]), ("s0",), merged_into_chain=True),
                rounds,
            )

    def test_synchronization_count(self):
        expr = expression(2)
        rounds = (
            MDRound(steps=(step("c0"),), sites=("s0",)),
            MDRound(steps=(step("c1"),), sites=("s0",)),
        )
        distributed_base = Plan(expr, BaseRound(DistinctBase("T", ["k"]), ("s0",)), rounds)
        assert distributed_base.synchronization_count == 3

        merged_rounds = (
            MDRound(steps=(step("c0"), step("c1")), sites=("s0",), merged_base=True),
        )
        merged = Plan(
            expr,
            BaseRound(DistinctBase("T", ["k"]), ("s0",), merged_into_chain=True),
            merged_rounds,
        )
        assert merged.synchronization_count == 1

    def test_participating_site_counts(self):
        expr = expression(1)
        rounds = (MDRound(steps=(step("c0"),), sites=("s0", "s1")),)
        plan = Plan(expr, BaseRound(DistinctBase("T", ["k"]), ("s0", "s1")), rounds)
        base_sites, round_sites = plan.participating_site_counts()
        assert base_sites == 2
        assert round_sites == [2]

    def test_describe_mentions_optimizations(self):
        expr = expression(2)
        rounds = (
            MDRound(
                steps=(step("c0"), step("c1")),
                sites=("s0",),
                independent_reduction=True,
                ship_filters={"s0": KEY},
            ),
        )
        plan = Plan(expr, BaseRound(DistinctBase("T", ["k"]), ("s0",)), rounds, ("note",))
        text = plan.describe()
        assert "chain" in text
        assert "independent group reduction" in text
        assert "aware group reduction" in text
        assert "note" in text
