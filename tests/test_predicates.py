"""Unit tests for predicate analysis (conjuncts, atoms, intervals, domains)."""

import math

import pytest

from repro.relalg.expressions import (
    BASE_VAR,
    DETAIL_VAR,
    Const,
    base,
    detail,
    expr_equals,
)
from repro.relalg.predicates import (
    Domain,
    Interval,
    conjuncts,
    disjuncts,
    domains_from_predicate,
    entails_key_equality,
    interval_of,
    is_trivially_false,
    is_trivially_true,
    key_equality_condition,
    references_only,
    split_condition,
)

INF = math.inf


class TestBooleanStructure:
    def test_conjuncts_flatten(self):
        theta = (base.a == detail.a) & (detail.v > 1) & (base.b == detail.b)
        parts = conjuncts(theta)
        assert len(parts) == 3

    def test_conjuncts_single(self):
        assert len(conjuncts(base.a == detail.a)) == 1

    def test_disjuncts_flatten(self):
        theta = (detail.v > 1) | (detail.v < 0) | (detail.v == 0.5)
        assert len(disjuncts(theta)) == 3

    def test_trivial_constants(self):
        assert is_trivially_true(Const(True))
        assert not is_trivially_true(Const(False))
        assert is_trivially_false(Const(False))

    def test_references_only(self):
        assert references_only(detail.v + 1, DETAIL_VAR)
        assert not references_only(base.a + detail.v, DETAIL_VAR)
        assert references_only(Const(3), DETAIL_VAR)


class TestSplitCondition:
    def test_simple_equality_atom(self):
        split = split_condition(base.k == detail.k, BASE_VAR, DETAIL_VAR)
        assert split.hashable
        assert len(split.atoms) == 1
        assert expr_equals(split.atoms[0].base_expr, base.k)
        assert expr_equals(split.atoms[0].detail_expr, detail.k)

    def test_reversed_equality_is_oriented(self):
        split = split_condition(detail.k == base.k, BASE_VAR, DETAIL_VAR)
        assert len(split.atoms) == 1
        assert expr_equals(split.atoms[0].base_expr, base.k)

    def test_expression_sided_atom(self):
        split = split_condition(
            base.a + base.b == detail.x * 2, BASE_VAR, DETAIL_VAR
        )
        assert len(split.atoms) == 1

    def test_classification(self):
        theta = (
            (base.k == detail.k)
            & (base.flag > 0)
            & (detail.v < 100)
            & (detail.v >= base.threshold)
        )
        split = split_condition(theta, BASE_VAR, DETAIL_VAR)
        assert len(split.atoms) == 1
        assert len(split.base_only) == 1
        assert len(split.detail_only) == 1
        assert len(split.residual) == 1

    def test_constant_conjunct_goes_base_only(self):
        split = split_condition(
            (base.k == detail.k) & Const(True), BASE_VAR, DETAIL_VAR
        )
        assert len(split.base_only) == 1

    def test_non_equality_mixed_is_residual(self):
        split = split_condition(base.a < detail.b, BASE_VAR, DETAIL_VAR)
        assert not split.hashable
        assert len(split.residual) == 1

    def test_equality_between_base_exprs_is_base_only(self):
        split = split_condition(base.a == base.b, BASE_VAR, DETAIL_VAR)
        assert not split.atoms
        assert len(split.base_only) == 1


class TestKeyEquality:
    def test_build_condition(self):
        theta = key_equality_condition(["a", "b"], BASE_VAR, DETAIL_VAR)
        split = split_condition(theta, BASE_VAR, DETAIL_VAR)
        assert len(split.atoms) == 2

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            key_equality_condition([], BASE_VAR, DETAIL_VAR)

    def test_entails_key_equality_positive(self):
        theta = (base.a == detail.a) & (base.b == detail.b) & (detail.v > 0)
        assert entails_key_equality(theta, ["a", "b"], BASE_VAR, DETAIL_VAR)

    def test_entails_key_equality_missing_attr(self):
        theta = base.a == detail.a
        assert not entails_key_equality(theta, ["a", "b"], BASE_VAR, DETAIL_VAR)

    def test_cross_attr_equality_does_not_count(self):
        # b.a == r.b is not equality ON attribute a.
        theta = base.a == detail.b
        assert not entails_key_equality(theta, ["a"], BASE_VAR, DETAIL_VAR)


class TestInterval:
    def test_point_and_unbounded(self):
        assert Interval.point(3).is_point
        assert Interval.unbounded().low == -INF

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_add_sub(self):
        a = Interval(1, 2)
        b = Interval(10, 20)
        assert (a + b) == Interval(11, 22)
        assert (b - a) == Interval(8, 19)

    def test_mul_with_signs(self):
        assert Interval(-2, 3) * Interval(4, 5) == Interval(-10, 15)
        assert Interval(-2, -1) * Interval(-3, -2) == Interval(2, 6)

    def test_mul_with_infinity_and_zero(self):
        product = Interval(0, 1) * Interval(0, INF)
        assert product.low == 0
        assert product.high == INF

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_divide(self):
        assert Interval(4, 8).divide(Interval(2, 4)) == Interval(1, 4)

    def test_divide_straddling_zero_is_unknown(self):
        assert Interval(1, 2).divide(Interval(-1, 1)) is None

    def test_intersects_contains(self):
        assert Interval(1, 5).intersects(Interval(5, 9))
        assert not Interval(1, 4).intersects(Interval(5, 9))
        assert Interval(1, 5).contains(3)
        assert not Interval(1, 5).contains(6)


class TestDomain:
    def test_of_values_numeric_gets_interval(self):
        domain = Domain.of_values([3, 1, 7])
        assert domain.interval == Interval(1, 7)
        assert domain.values == frozenset([1, 3, 7])

    def test_of_values_strings_unbounded_interval(self):
        domain = Domain.of_values(["a", "b"])
        assert domain.interval == Interval.unbounded()

    def test_intersect_value_sets(self):
        left = Domain.of_values([1, 2, 3])
        right = Domain.of_values([2, 3, 4])
        assert left.intersect(right).values == frozenset([2, 3])

    def test_intersect_values_with_interval(self):
        values = Domain.of_values([1, 5, 10])
        interval = Domain.of_interval(4, 11)
        assert values.intersect(interval).values == frozenset([5, 10])

    def test_intersect_disjoint_intervals_is_empty(self):
        result = Domain.of_interval(0, 1).intersect(Domain.of_interval(2, 3))
        assert result.is_empty

    def test_empty(self):
        assert Domain.of_values([]).is_empty
        assert not Domain.of_interval(0, 1).is_empty


class TestDomainsFromPredicate:
    def test_in_set(self):
        domains = domains_from_predicate(detail.a.is_in([1, 2]), DETAIL_VAR)
        assert domains["a"].values == frozenset([1, 2])

    def test_between(self):
        domains = domains_from_predicate(detail.a.between(1, 25), DETAIL_VAR)
        assert domains["a"].interval == Interval(1, 25)

    def test_equality_with_constant(self):
        domains = domains_from_predicate(detail.a == 7, DETAIL_VAR)
        assert domains["a"].values == frozenset([7])

    def test_mirrored_comparison(self):
        domains = domains_from_predicate(Const(10) >= detail.a, DETAIL_VAR)
        assert domains["a"].interval.high == 10

    def test_range_comparisons(self):
        phi = (detail.a > 3) & (detail.a <= 9)
        domains = domains_from_predicate(phi, DETAIL_VAR)
        assert domains["a"].interval == Interval(3, 9)

    def test_conjunction_narrows(self):
        phi = detail.a.is_in([1, 2, 3, 50]) & (detail.a < 10)
        domains = domains_from_predicate(phi, DETAIL_VAR)
        assert domains["a"].values == frozenset([1, 2, 3])

    def test_wrong_relvar_ignored(self):
        domains = domains_from_predicate(base.a == 3, DETAIL_VAR)
        assert domains == {}

    def test_unparseable_conjunct_ignored(self):
        phi = (detail.a + detail.b < 10) & (detail.a <= 5)
        domains = domains_from_predicate(phi, DETAIL_VAR)
        assert domains["a"].interval.high == 5
        assert "b" not in domains


class TestIntervalOf:
    DOMAINS = {"a": Domain.of_interval(1, 25), "b": Domain.of_values([2, 4])}

    def test_field(self):
        assert interval_of(detail.a, DETAIL_VAR, self.DOMAINS) == Interval(1, 25)

    def test_unknown_field_is_unbounded(self):
        assert interval_of(detail.z, DETAIL_VAR, self.DOMAINS) == Interval.unbounded()

    def test_wrong_relvar_is_none(self):
        assert interval_of(base.a, DETAIL_VAR, self.DOMAINS) is None

    def test_const(self):
        assert interval_of(Const(5), DETAIL_VAR, {}) == Interval.point(5)

    def test_non_numeric_const_is_none(self):
        assert interval_of(Const("x"), DETAIL_VAR, {}) is None

    def test_arithmetic(self):
        # The paper's example: Flow.SourceAS * 2 with SourceAS in [1, 25].
        assert interval_of(detail.a * 2, DETAIL_VAR, self.DOMAINS) == Interval(2, 50)
        assert interval_of(detail.a + detail.b, DETAIL_VAR, self.DOMAINS) == Interval(3, 29)
        assert interval_of(-detail.a, DETAIL_VAR, self.DOMAINS) == Interval(-25, -1)

    def test_division_by_straddling_interval(self):
        domains = {"a": Domain.of_interval(-1, 1)}
        assert interval_of(Const(1) / detail.a, DETAIL_VAR, domains) is None
