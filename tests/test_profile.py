"""EXPLAIN ANALYZE profiles: attribution coverage, impacts, rendering,
and rebuilding a profile from a dumped JSONL trace."""

import pytest

from repro.data.tpcr import (
    TPCRConfig,
    generate_tpcr,
    nation_partitioner,
    register_tpcr_fds,
)
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    StatisticsStore,
    execute_query,
)
from repro.distributed.costing import estimate_optimization_impacts
from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_profile,
    build_trace,
    profile_from_trace,
    render_profile,
)
from repro.queries.olap import QueryBuilder
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail

TPCR = generate_tpcr(TPCRConfig(scale=0.0005, seed=5))
SITES = 3


def build_cluster() -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(SITES)
    cluster.load_partitioned("TPCR", TPCR, nation_partitioner(SITES))
    register_tpcr_fds(cluster.catalog)
    return cluster


def section5_expression():
    return (
        QueryBuilder("TPCR", keys=["NationKey"])
        .stage([count_star("cnt"), AggSpec("avg", detail.Price, "avg_price")])
        .stage([count_star("above")], extra=detail.Price >= base.avg_price)
        .build()
    )


def traced_profiled_run(query_id=1):
    cluster = build_cluster()
    expression = section5_expression()
    options = OptimizationOptions.all()
    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    result = execute_query(
        cluster, expression, options,
        tracer=tracer, metrics=registry, query_id=query_id,
    )
    impacts = estimate_optimization_impacts(
        expression,
        cluster.catalog,
        StatisticsStore.from_cluster(cluster),
        options=options,
        measured_stats=result.stats,
        plan=result.plan,
    )
    profile = build_profile(
        tracer.finished(),
        result.stats,
        impacts=impacts,
        plan_description=result.plan.describe(),
        notes=result.plan.notes,
        query_id=query_id,
    )
    return cluster, tracer, registry, result, profile


class TestCoverage:
    def test_time_coverage_meets_acceptance_bar(self):
        *_rest, profile = traced_profiled_run()
        assert profile.wall_s > 0
        assert profile.time_coverage() >= 0.95

    def test_bytes_fully_attributed(self):
        *_rest, result, profile = traced_profiled_run()
        assert profile.stats_bytes_total == result.stats.bytes_total
        assert profile.bytes_coverage() == pytest.approx(1.0)
        assert profile.bytes_total == result.stats.bytes_total

    def test_every_applied_optimization_carries_a_measured_saving(self):
        *_rest, result, profile = traced_profiled_run()
        applied = {name for name, _desc in result.plan.applied_optimizations()}
        assert applied, "the Section-5 query should trigger optimizations"
        reported = {impact.name for impact in profile.impacts}
        assert reported == applied
        for impact in profile.impacts:
            assert impact.measured_tuples == float(result.stats.tuples_total)
            assert impact.measured_saving_tuples is not None

    def test_rounds_and_sites_mirror_stats(self):
        *_rest, result, profile = traced_profiled_run()
        assert len(profile.rounds) == result.stats.round_count
        stats_dict = result.stats.to_dict()
        for round_profile, round_record in zip(profile.rounds, stats_dict["rounds"]):
            assert round_profile.index == round_record["index"]
            assert {site.site_id for site in round_profile.sites} == set(
                round_record.get("sites", {})
            )

    def test_operator_spans_enrich_sites(self):
        *_rest, profile = traced_profiled_run()
        names = {
            operator.name
            for round_profile in profile.rounds
            for site in round_profile.sites
            for operator in site.operators
        }
        assert "round.evaluate" in names
        coordinator_names = {
            operator.name
            for round_profile in profile.rounds
            for operator in round_profile.coordinator_operators
        }
        assert "round.merge" in coordinator_names

    def test_query_id_taken_from_stats(self):
        *_rest, result, profile = traced_profiled_run(query_id=9)
        assert result.stats.query_id == 9
        assert profile.query_id == 9


class TestUntracedAndErrors:
    def test_profile_without_spans_still_exact(self):
        cluster = build_cluster()
        result = execute_query(
            cluster, section5_expression(), OptimizationOptions.all()
        )
        profile = build_profile((), result.stats)
        assert profile.bytes_coverage() == pytest.approx(1.0)
        # Without a root span, wall falls back to attributed time.
        assert profile.time_coverage() == 1.0
        assert not any(
            site.operators
            for round_profile in profile.rounds
            for site in round_profile.sites
        )

    def test_rejects_non_stats_input(self):
        with pytest.raises(ObservabilityError, match="ExecutionStats"):
            build_profile((), {"not": "stats"})


class TestRendering:
    def test_render_contains_tree_and_sections(self):
        *_rest, profile = traced_profiled_run()
        text = render_profile(profile)
        assert "EXPLAIN ANALYZE" in text
        assert "attributed to plan nodes" in text
        assert "+- round" in text
        assert "+- site0" in text
        assert "+- merge" in text
        assert "optimizations (measured vs unoptimized estimate)" in text
        assert "optimizer notes:" in text
        assert "plan:" in text
        # Every applied optimization shows both sides of the comparison.
        for impact in profile.impacts:
            assert impact.name in text
        assert "measured" in text

    def test_render_without_impacts_or_plan(self):
        cluster = build_cluster()
        result = execute_query(
            cluster, section5_expression(), OptimizationOptions.all()
        )
        text = render_profile(build_profile((), result.stats))
        assert "optimizations" not in text
        assert "plan:" not in text


class TestFromTrace:
    def test_profile_rebuilt_from_dumped_trace(self, tmp_path):
        _cluster, tracer, registry, result, profile = traced_profiled_run()
        log = build_trace(
            tracer, registry, result.stats,
            plan=result.plan, query_id=1,
        )
        path = tmp_path / "trace.jsonl"
        log.dump(path)

        from repro.obs import EventLog

        rebuilt = profile_from_trace(EventLog.load(path), query_id=1)
        assert rebuilt.query_id == 1
        assert rebuilt.wall_s == pytest.approx(profile.wall_s)
        assert rebuilt.bytes_total == profile.bytes_total
        assert rebuilt.time_coverage() >= 0.95
        assert rebuilt.plan_description == result.plan.describe()
        assert rebuilt.notes == tuple(result.plan.notes)

    def test_from_trace_requires_stats(self):
        from repro.obs import EventLog

        with pytest.raises(ObservabilityError, match="no stats record"):
            profile_from_trace(EventLog())
