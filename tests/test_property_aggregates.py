"""Property-based tests: aggregate decomposition laws.

For every decomposable aggregate the sub/super scheme must satisfy, for
any partitioning of the input multiset into any number of pieces in any
order: combining the pieces' sub-aggregates and finalizing equals
aggregating the whole multiset directly. This is the algebraic heart of
Theorem 1.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import col

SPECS = [
    count_star("c"),
    AggSpec("count", col.x, "c"),
    AggSpec("sum", col.x, "s"),
    AggSpec("min", col.x, "m"),
    AggSpec("max", col.x, "m"),
    AggSpec("avg", col.x, "a"),
    AggSpec("var", col.x, "v"),
    AggSpec("std", col.x, "v"),
    AggSpec("geomean", col.x, "g"),
]

values_strategy = st.lists(
    st.none()
    | st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(
        lambda value: round(value, 3)
    ),
    max_size=30,
)
splits_strategy = st.lists(st.integers(min_value=0, max_value=30), max_size=4)


def direct(spec, values):
    accumulator = spec.accumulator()
    for value in values:
        accumulator.update(value)
    return accumulator.result()


def split_points(raw_splits, length):
    return sorted(min(point, length) for point in raw_splits)


@pytest.mark.parametrize("spec", SPECS, ids=[spec.func for spec in SPECS])
@given(values=values_strategy, raw_splits=splits_strategy)
@settings(max_examples=60, deadline=None)
def test_any_partitioning_matches_direct(spec, values, raw_splits):
    points = [0, *split_points(raw_splits, len(values)), len(values)]
    pieces = [values[start:end] for start, end in zip(points, points[1:])]
    combined = spec.accumulator()
    for piece in pieces:
        partial = spec.accumulator()
        for value in piece:
            partial.update(value)
        combined.load_sub_values(partial.sub_values())
    expected = direct(spec, values)
    actual = combined.result()
    if expected is None:
        assert actual is None
    else:
        assert actual == pytest.approx(expected, rel=1e-6, abs=1e-6)


@pytest.mark.parametrize("spec", SPECS, ids=[spec.func for spec in SPECS])
@given(values=values_strategy, pivot=st.integers(min_value=0, max_value=30))
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative(spec, values, pivot):
    pivot = min(pivot, len(values))
    first, second = values[:pivot], values[pivot:]

    def partial(piece):
        accumulator = spec.accumulator()
        for value in piece:
            accumulator.update(value)
        return accumulator

    left_right = partial(first)
    left_right.merge(partial(second))
    right_left = partial(second)
    right_left.merge(partial(first))
    a = left_right.result()
    b = right_left.result()
    if a is None or b is None:
        assert a == b
    else:
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("spec", SPECS, ids=[spec.func for spec in SPECS])
@given(values=values_strategy)
@settings(max_examples=30, deadline=None)
def test_identity_element(spec, values):
    """Merging an empty partition never changes the result."""
    accumulator = spec.accumulator()
    for value in values:
        accumulator.update(value)
    before = accumulator.result()
    accumulator.load_sub_values(spec.accumulator().sub_values())
    after = accumulator.result()
    if before is None:
        assert after is None
    else:
        assert after == pytest.approx(before, rel=1e-9, abs=1e-9)


@given(values=values_strategy)
@settings(max_examples=40, deadline=None)
def test_var_never_negative(values):
    result = direct(AggSpec("var", col.x, "v"), values)
    if result is not None:
        assert result >= 0.0
        std = direct(AggSpec("std", col.x, "s"), values)
        assert std == pytest.approx(math.sqrt(result), rel=1e-9, abs=1e-12)
