"""Property-based soundness tests for the optimizer's condition analysis.

Theorem 4 soundness: if the derived ship filter ¬ψᵢ rejects a base tuple
b, then *no* detail tuple satisfying φᵢ may satisfy any condition with b.
We verify it operationally: evaluate the GMDJ of the full base against
the φᵢ-filtered detail partition, and check every rejected base tuple
has empty RNG (count 0 in every block).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmdj.analysis import derive_ship_filter
from repro.gmdj.blocks import MDBlock
from repro.gmdj.operator import evaluate
from repro.relalg.aggregates import count_star
from repro.relalg.expressions import BASE_VAR, DETAIL_VAR, base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema

DETAIL_SCHEMA = Schema.of(("p", INT), ("q", INT))
BASE_SCHEMA = Schema.of(("x", INT), ("y", INT))

detail_rows = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
    ),
    max_size=40,
)
base_rows = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
    ),
    max_size=25,
)

THETAS = [
    base.x == detail.p,
    (base.x == detail.p) & (base.y == detail.q),
    base.x + base.y < detail.p * 2,
    (base.x == detail.p) & (detail.q > 5),
    base.y <= detail.q,
    base.x == detail.p + detail.q,
]

PHIS = [
    detail.p.between(-5, 5),
    detail.p.is_in([0, 1, 2]),
    (detail.p > 0) & (detail.q.between(-3, 3)),
    detail.q == 7,
]


@given(
    rows=detail_rows,
    groups=base_rows,
    theta_indices=st.lists(
        st.integers(min_value=0, max_value=len(THETAS) - 1),
        min_size=1,
        max_size=3,
    ),
    phi_index=st.integers(min_value=0, max_value=len(PHIS) - 1),
)
@settings(max_examples=120, deadline=None)
def test_ship_filter_is_sound(rows, groups, theta_indices, phi_index):
    phi = PHIS[phi_index]
    thetas = [THETAS[index] for index in theta_indices]
    ship_filter = derive_ship_filter(thetas, phi)
    if ship_filter is None:
        return  # no reduction derived: trivially sound

    # The site's partition: detail rows satisfying phi.
    phi_predicate = phi.compile({DETAIL_VAR: DETAIL_SCHEMA})
    site_rows = [row for row in rows if phi_predicate({DETAIL_VAR: row})]
    site_relation = Relation(DETAIL_SCHEMA, site_rows)
    base_relation = Relation(BASE_SCHEMA, groups)

    blocks = [
        MDBlock([count_star(f"c{index}")], theta)
        for index, theta in enumerate(thetas)
    ]
    result = evaluate(base_relation, site_relation, blocks)

    filter_predicate = ship_filter.compile({BASE_VAR: BASE_SCHEMA})
    count_positions = [
        result.schema.position(f"c{index}") for index in range(len(thetas))
    ]
    for base_row, result_row in zip(base_relation.rows, result.rows):
        if not filter_predicate({BASE_VAR: base_row}):
            # Rejected tuples must have contributed nothing at this site.
            for position in count_positions:
                assert result_row[position] == 0, (
                    f"unsound filter: {ship_filter!r} rejected {base_row} "
                    f"which matches at the site"
                )
