"""Property-based tests: the wire codec round-trips arbitrary relations."""

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.serialize import decode_relation, encode_relation
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Attribute, Schema

_VALUE_STRATEGIES = {
    INT: st.integers(min_value=-(2**62), max_value=2**62),
    FLOAT: st.floats(allow_nan=False, allow_infinity=False, width=64),
    STR: st.text(max_size=40),
    BOOL: st.booleans(),
    DATE: st.dates(
        min_value=datetime.date(1, 1, 1), max_value=datetime.date(9999, 12, 31)
    ),
}

_NAME = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=12,
)


@st.composite
def relations(draw):
    attribute_count = draw(st.integers(min_value=1, max_value=6))
    names = draw(
        st.lists(_NAME, min_size=attribute_count, max_size=attribute_count, unique=True)
    )
    types = draw(
        st.lists(
            st.sampled_from(list(_VALUE_STRATEGIES)),
            min_size=attribute_count,
            max_size=attribute_count,
        )
    )
    schema = Schema(Attribute(name, type_name) for name, type_name in zip(names, types))
    row_strategy = st.tuples(
        *(st.none() | _VALUE_STRATEGIES[type_name] for type_name in types)
    )
    rows = draw(st.lists(row_strategy, max_size=25))
    return Relation(schema, rows)


@given(relations())
@settings(max_examples=150, deadline=None)
def test_round_trip_identity(relation):
    decoded = decode_relation(encode_relation(relation))
    assert decoded.schema == relation.schema
    assert decoded.rows == relation.rows


@given(relations())
@settings(max_examples=50, deadline=None)
def test_encoding_is_deterministic(relation):
    assert encode_relation(relation) == encode_relation(relation)


@given(relations())
@settings(max_examples=50, deadline=None)
def test_size_grows_with_duplicated_rows(relation):
    doubled = relation.union_all(relation)
    if relation.rows:
        assert len(encode_relation(doubled)) > len(encode_relation(relation))
    else:
        assert len(encode_relation(doubled)) == len(encode_relation(relation))
