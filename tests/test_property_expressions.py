"""Property test: compiled expressions agree with interpreted evaluation.

Random expression trees over two relations are evaluated both ways —
``Expr.eval`` with dict bindings and ``Expr.compile`` against row tuples
— on random rows including NULLs. The two paths share no evaluation
code, so agreement pins down the semantics (NULL propagation, NULL
comparisons, division by zero) across every node kind.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relalg.expressions import (
    BASE_VAR,
    Const,
    DETAIL_VAR,
    Field,
    Not,
)
from repro.relalg.schema import FLOAT, Schema

BASE_SCHEMA = Schema.of(("x", FLOAT), ("y", FLOAT))
DETAIL_SCHEMA = Schema.of(("u", FLOAT), ("v", FLOAT))

_values = st.none() | st.floats(
    min_value=-100, max_value=100, allow_nan=False
).map(lambda value: round(value, 2))


@st.composite
def numeric_exprs(draw, depth=0):
    choice = draw(st.integers(min_value=0, max_value=5 if depth < 3 else 2))
    if choice == 0:
        return Const(draw(_values))
    if choice == 1:
        name, relvar = draw(
            st.sampled_from(
                [("x", BASE_VAR), ("y", BASE_VAR), ("u", DETAIL_VAR), ("v", DETAIL_VAR)]
            )
        )
        return Field(name, relvar)
    if choice == 2:
        return -draw(numeric_exprs(depth=depth + 1))
    left = draw(numeric_exprs(depth=depth + 1))
    right = draw(numeric_exprs(depth=depth + 1))
    operator = draw(st.sampled_from(["+", "-", "*", "/"]))
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    return left / right


@st.composite
def condition_exprs(draw, depth=0):
    choice = draw(st.integers(min_value=0, max_value=6 if depth < 2 else 3))
    if choice <= 1:
        left = draw(numeric_exprs(depth=2))
        right = draw(numeric_exprs(depth=2))
        operator = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        from repro.relalg.expressions import Comparison

        return Comparison(operator, left, right)
    if choice == 2:
        return draw(numeric_exprs(depth=2)).is_null()
    if choice == 3:
        values = draw(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), max_size=4))
        return draw(numeric_exprs(depth=2)).is_in(values)
    if choice == 4:
        return Not(draw(condition_exprs(depth=depth + 1)))
    left = draw(condition_exprs(depth=depth + 1))
    right = draw(condition_exprs(depth=depth + 1))
    return (left & right) if choice == 5 else (left | right)


_rows = st.tuples(_values, _values)


def both_ways(expression, base_row, detail_row):
    bindings = {
        BASE_VAR: dict(zip(("x", "y"), base_row)),
        DETAIL_VAR: dict(zip(("u", "v"), detail_row)),
        None: dict(zip(("u", "v"), detail_row)),
    }
    interpreted = expression.eval(bindings)
    compiled = expression.compile(
        {BASE_VAR: BASE_SCHEMA, DETAIL_VAR: DETAIL_SCHEMA, None: DETAIL_SCHEMA}
    )
    direct = compiled({BASE_VAR: base_row, DETAIL_VAR: detail_row, None: detail_row})
    return interpreted, direct


@given(expression=numeric_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=200, deadline=None)
def test_numeric_eval_equals_compile(expression, base_row, detail_row):
    interpreted, direct = both_ways(expression, base_row, detail_row)
    if interpreted is None or direct is None:
        assert interpreted is None and direct is None
    elif math.isinf(interpreted) or math.isnan(interpreted):
        assert math.isinf(direct) or math.isnan(direct) or direct == interpreted
    else:
        assert direct == pytest.approx(interpreted, rel=1e-12, abs=1e-12)


@given(expression=condition_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=200, deadline=None)
def test_condition_eval_equals_compile(expression, base_row, detail_row):
    interpreted, direct = both_ways(expression, base_row, detail_row)
    assert bool(interpreted) == bool(direct)


@given(expression=condition_exprs(), base_row=_rows, detail_row=_rows)
@settings(max_examples=100, deadline=None)
def test_rebuild_preserves_semantics(expression, base_row, detail_row):
    rebuilt = expression.rebuild(expression.children()) if expression.children() else expression
    original, _direct = both_ways(expression, base_row, detail_row)
    copied, _direct = both_ways(rebuilt, base_row, detail_row)
    assert bool(original) == bool(copied)
