"""Property-based tests for GMDJ evaluation and distributed correctness.

Three levels of the paper's correctness story, each under randomized
data, partitionings and optimization toggles:

1. hash-based GMDJ == brute-force Definition 1;
2. Theorem 1: sub/super synchronization == direct evaluation under any
   partition of the detail relation;
3. Theorem 3: the full distributed pipeline == centralized evaluation,
   with Theorem 2's traffic bound respected.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_relations_equal, brute_force_gmdj
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.gmdj.operator import evaluate, evaluate_sub, super_aggregate
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, Schema
from repro.warehouse.partition import ValueListPartitioner

DETAIL_SCHEMA = Schema.of(("g", INT), ("h", INT), ("v", FLOAT))

detail_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
        st.none() | st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=0,
    max_size=60,
)

CONDITIONS = [
    base.g == detail.g,
    (base.g == detail.g) & (base.h == detail.h),
    (base.g == detail.g) & (detail.v > 0),
    detail.v >= base.g * 10,
    (base.h == detail.h) & (detail.g >= base.g),
]

AGG_CHOICES = [
    lambda i: count_star(f"c{i}"),
    lambda i: AggSpec("sum", detail.v, f"s{i}"),
    lambda i: AggSpec("avg", detail.v, f"a{i}"),
    lambda i: AggSpec("min", detail.v, f"lo{i}"),
    lambda i: AggSpec("max", detail.v, f"hi{i}"),
]

blocks_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(CONDITIONS) - 1),
        st.lists(
            st.integers(min_value=0, max_value=len(AGG_CHOICES) - 1),
            min_size=1,
            max_size=3,
        ),
    ),
    min_size=1,
    max_size=2,
)


def build_blocks(raw):
    blocks = []
    counter = 0
    for condition_index, agg_indices in raw:
        aggs = []
        for agg_index in agg_indices:
            aggs.append(AGG_CHOICES[agg_index](counter))
            counter += 1
        blocks.append(MDBlock(aggs, CONDITIONS[condition_index]))
    return blocks


@given(rows=detail_rows, raw_blocks=blocks_strategy)
@settings(max_examples=50, deadline=None)
def test_hash_evaluation_matches_brute_force(rows, raw_blocks):
    detail_relation = Relation(DETAIL_SCHEMA, rows)
    base_relation = detail_relation.distinct_project(["g", "h"])
    blocks = build_blocks(raw_blocks)
    assert_relations_equal(
        evaluate(base_relation, detail_relation, blocks),
        brute_force_gmdj(base_relation, detail_relation, blocks),
    )


@given(
    rows=detail_rows,
    raw_blocks=blocks_strategy,
    assignment=st.lists(st.integers(min_value=0, max_value=3), min_size=60, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_theorem1_random_partitions(rows, raw_blocks, assignment):
    detail_relation = Relation(DETAIL_SCHEMA, rows)
    base_relation = detail_relation.distinct_project(["g", "h"])
    blocks = build_blocks(raw_blocks)
    pieces = [[] for _index in range(4)]
    for row, site in zip(rows, assignment):
        pieces[site].append(row)
    h = None
    for piece in pieces:
        h_i, _touched = evaluate_sub(base_relation, Relation(DETAIL_SCHEMA, piece), blocks)
        h = h_i if h is None else h.union_all(h_i)
    merged = super_aggregate(base_relation, h, ["g", "h"], blocks)
    assert_relations_equal(merged, evaluate(base_relation, detail_relation, blocks))


@given(
    rows=detail_rows,
    toggles=st.tuples(
        st.booleans(), st.booleans(), st.booleans(), st.booleans(), st.booleans()
    ),
    correlated=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_distributed_matches_centralized_random_options(rows, toggles, correlated):
    detail_relation = Relation(DETAIL_SCHEMA, rows)
    cluster = SimulatedCluster.with_sites(3)
    cluster.load_partitioned(
        "T", detail_relation, ValueListPartitioner.spread("g", range(6), 3)
    )
    key = base.g == detail.g
    steps = [
        MDStep("T", [MDBlock([count_star("c1"), AggSpec("avg", detail.v, "m")], key)])
    ]
    if correlated:
        steps.append(
            MDStep("T", [MDBlock([count_star("c2")], key & (detail.v >= base.m))])
        )
    else:
        steps.append(
            MDStep("T", [MDBlock([count_star("c2")], key & (detail.v < 0))])
        )
    expression = GMDJExpression(DistinctBase("T", ["g"]), steps)
    options = OptimizationOptions(*toggles)
    reference = expression.evaluate_centralized(cluster.conceptual_tables())
    result = execute_query(cluster, expression, options)
    assert_relations_equal(reference, result.relation)
    assert result.respects_theorem2()
