"""Property test: generated SQL statements parse to the intended GMDJs.

Random queries are built twice — once as SQL text fed through the
parser, once directly with QueryBuilder — and both are evaluated
centrally on random data. Agreement across many random shapes pins the
parser's resolution rules (keys vs aggregates vs detail attributes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_relations_equal
from repro.queries.olap import QueryBuilder
from repro.queries.sql import parse_olap_query
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import Comparison, Field, DETAIL_VAR, base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, Schema

SCHEMA = Schema.of(("g", INT), ("h", INT), ("v", FLOAT), ("w", FLOAT))

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=-50, max_value=50, allow_nan=False).map(
            lambda value: round(value, 2)
        ),
        st.floats(min_value=-50, max_value=50, allow_nan=False).map(
            lambda value: round(value, 2)
        ),
    ),
    min_size=1,
    max_size=40,
)

AGG_TEMPLATES = [
    ("COUNT(*)", lambda name: count_star(name)),
    ("SUM(v)", lambda name: AggSpec("sum", detail.v, name)),
    ("AVG(v)", lambda name: AggSpec("avg", detail.v, name)),
    ("MIN(w)", lambda name: AggSpec("min", detail.w, name)),
    ("MAX(v + w)", lambda name: AggSpec("max", detail.v + detail.w, name)),
]

FILTER_TEMPLATES = [
    ("v > 0", detail.v > 0),
    ("w BETWEEN -10 AND 10", detail.w.between(-10, 10)),
    ("h IN (0, 1)", detail.h.is_in([0, 1])),
    ("NOT v < -25", ~(detail.v < -25)),
]

KEY_CHOICES = [["g"], ["g", "h"]]


@given(
    rows=rows_strategy,
    key_index=st.integers(min_value=0, max_value=len(KEY_CHOICES) - 1),
    agg_indices=st.lists(
        st.integers(min_value=0, max_value=len(AGG_TEMPLATES) - 1),
        min_size=1,
        max_size=3,
    ),
    filter_index=st.none() | st.integers(min_value=0, max_value=len(FILTER_TEMPLATES) - 1),
    correlated=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_sql_matches_builder(rows, key_index, agg_indices, filter_index, correlated):
    data = Relation(SCHEMA, rows)
    keys = KEY_CHOICES[key_index]

    sql_aggs = []
    builder_aggs = []
    for position, agg_index in enumerate(agg_indices):
        text, factory = AGG_TEMPLATES[agg_index]
        name = f"a{position}"
        sql_aggs.append(f"{text} AS {name}")
        builder_aggs.append(factory(name))

    where_sql = ""
    where_expr = None
    if filter_index is not None:
        text, expression = FILTER_TEMPLATES[filter_index]
        where_sql = f" WHERE {text}"
        where_expr = expression

    sql = (
        f"SELECT {', '.join(keys)}, {', '.join(sql_aggs)} "
        f"FROM T{where_sql} GROUP BY {', '.join(keys)}"
    )
    builder = QueryBuilder("T", keys)
    builder.stage(builder_aggs, extra=where_expr)

    if correlated:
        sql += " THEN SELECT COUNT(*) AS above WHERE v >= a0"
        builder.stage(
            [count_star("above")],
            extra=Comparison(">=", Field("v", DETAIL_VAR), Field("a0", "b")),
        )

    parsed = parse_olap_query(sql)
    expected = builder.build()
    tables = {"T": data}
    assert_relations_equal(
        parsed.evaluate_centralized(tables), expected.evaluate_centralized(tables)
    )
