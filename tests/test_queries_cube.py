"""Unit tests for data cube construction via GMDJs."""

import itertools

import pytest

from conftest import assert_relations_equal
from repro.errors import PlanError
from repro.queries.cube import (
    combine_lattice_results,
    cube_base_relation,
    cube_lattice_queries,
    cube_single_expression,
    dimension_subsets,
)
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import col, detail
from repro.relalg.operators import group_by
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema

SALES = Relation(
    Schema.of(("region", STR), ("product", STR), ("amount", FLOAT)),
    [
        ("n", "a", 10.0),
        ("n", "a", 20.0),
        ("n", "b", 5.0),
        ("s", "a", 7.0),
        ("s", "b", 3.0),
        ("s", "b", 1.0),
    ],
)
DIMS = ["region", "product"]
AGGS = [count_star("cnt"), AggSpec("sum", detail.amount, "total")]
TABLES = {"Sales": SALES}


def brute_force_cube():
    """Reference cube: per-subset SQL group-bys, None for rolled-up dims."""
    rows = []
    for subset in dimension_subsets(DIMS):
        if subset:
            grouped = group_by(SALES, list(subset), AGGS)
            for row in grouped.rows:
                values = dict(zip(subset, row))
                agg_values = row[len(subset):]
                rows.append(
                    tuple(values.get(dim) for dim in DIMS) + tuple(agg_values)
                )
        else:
            grouped = group_by(
                SALES.extend("one", INT, col.amount * 0), ["one"], AGGS
            )
            rows.append((None, None) + tuple(grouped.rows[0][1:]))
    schema = Schema.of(("region", STR), ("product", STR), ("cnt", INT), ("total", FLOAT))
    return Relation(schema, rows)


class TestDimensionSubsets:
    def test_order_and_count(self):
        subsets = dimension_subsets(["a", "b"])
        assert subsets == [("a", "b"), ("a",), ("b",), ()]

    def test_three_dims(self):
        assert len(dimension_subsets(["a", "b", "c"])) == 8


class TestCubeBaseRelation:
    def test_lattice_contents(self):
        lattice = cube_base_relation(SALES, DIMS)
        rows = set(lattice.rows)
        assert ("n", "a") in rows
        assert ("n", None) in rows
        assert (None, "b") in rows
        assert (None, None) in rows
        # 4 full groups + 2 region rollups + 2 product rollups + 1 total
        assert len(lattice) == 9

    def test_needs_dimensions(self):
        with pytest.raises(PlanError):
            cube_base_relation(SALES, [])


class TestSingleExpressionCube:
    def test_matches_brute_force(self):
        expression = cube_single_expression(SALES, "Sales", DIMS, AGGS)
        result = expression.evaluate_centralized(TABLES)
        assert_relations_equal(result, brute_force_cube())

    def test_all_row_aggregates_everything(self):
        expression = cube_single_expression(SALES, "Sales", DIMS, AGGS)
        result = expression.evaluate_centralized(TABLES)
        total_row = next(
            row for row in result.rows if row[0] is None and row[1] is None
        )
        assert total_row[2] == len(SALES)
        assert total_row[3] == pytest.approx(46.0)


class TestLatticeQueries:
    def test_queries_cover_non_empty_subsets(self):
        queries = cube_lattice_queries("Sales", DIMS, AGGS)
        subsets = [subset for subset, _query in queries]
        assert subsets == [("region", "product"), ("region",), ("product",)]

    def test_combined_matches_single_expression(self):
        queries = cube_lattice_queries("Sales", DIMS, AGGS)
        results = {
            subset: query.evaluate_centralized(TABLES) for subset, query in queries
        }
        grand_total = group_by(
            SALES.extend("one", INT, col.amount * 0), ["one"], AGGS
        ).project(["cnt", "total"])
        combined = combine_lattice_results(DIMS, AGGS, results, grand_total)
        single = cube_single_expression(SALES, "Sales", DIMS, AGGS).evaluate_centralized(
            TABLES
        )
        assert_relations_equal(combined, single)

    def test_missing_dimension_rejected(self):
        queries = cube_lattice_queries("Sales", ["region"], AGGS)
        results = {
            subset: query.evaluate_centralized(TABLES) for subset, query in queries
        }
        with pytest.raises(PlanError):
            combine_lattice_results(["region", "ghost"], AGGS, results)
