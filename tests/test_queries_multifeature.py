"""Unit tests for multi-feature queries (Ross et al.)."""

import pytest

from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.errors import PlanError
from repro.queries.multifeature import Feature, multifeature_query
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema
from repro.warehouse.partition import HashPartitioner

SALES = Relation(
    Schema.of(("supp", STR), ("month", INT), ("price", FLOAT), ("qty", FLOAT)),
    [
        ("a", 1, 10.0, 5.0),
        ("a", 1, 10.0, 7.0),
        ("a", 1, 12.0, 1.0),
        ("a", 2, 8.0, 2.0),
        ("b", 1, 3.0, 9.0),
        ("b", 1, 5.0, 4.0),
    ],
)
TABLES = {"Sales": SALES}


def min_price_query():
    """Per (supp, month): min price, then stats of min-price sales."""
    return multifeature_query(
        "Sales",
        ["supp", "month"],
        [
            Feature([AggSpec("min", detail.price, "min_price")]),
            Feature(
                [count_star("at_min"), AggSpec("avg", detail.qty, "avg_qty_at_min")],
                when=detail.price == base.min_price,
            ),
        ],
    )


class TestMultiFeature:
    def test_validation(self):
        with pytest.raises(PlanError):
            multifeature_query("Sales", ["supp"], [])
        with pytest.raises(PlanError):
            Feature([])

    def test_min_price_cascade(self):
        result = min_price_query().evaluate_centralized(TABLES)
        lookup = {(row[0], row[1]): row[2:] for row in result.rows}
        assert lookup[("a", 1)] == (10.0, 2, 6.0)
        assert lookup[("a", 2)] == (8.0, 1, 2.0)
        assert lookup[("b", 1)] == (3.0, 1, 9.0)

    def test_three_feature_cascade(self):
        expression = multifeature_query(
            "Sales",
            ["supp"],
            [
                Feature([AggSpec("max", detail.price, "max_p")]),
                Feature(
                    [AggSpec("min", detail.qty, "min_q_at_max")],
                    when=detail.price == base.max_p,
                ),
                Feature(
                    [count_star("heavier")],
                    when=detail.qty > base.min_q_at_max,
                ),
            ],
        )
        result = expression.evaluate_centralized(TABLES)
        lookup = {row[0]: row[1:] for row in result.rows}
        # supp a: max price 12 -> min qty at max = 1 -> 4 rows with qty > 1
        assert lookup["a"] == (12.0, 1.0, 3)
        # supp b: max price 5 -> qty 4 -> rows with qty > 4: one (qty 9)
        assert lookup["b"] == (5.0, 4.0, 1)

    def test_distributed_matches(self):
        cluster = SimulatedCluster.with_sites(3)
        cluster.load_partitioned("Sales", SALES, HashPartitioner(["supp"], 3))
        expression = min_price_query()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        for options in (OptimizationOptions.none(), OptimizationOptions.all()):
            cluster.reset_network()
            result = execute_query(cluster, expression, options)
            assert reference.same_rows_any_order_of_columns(result.relation)
