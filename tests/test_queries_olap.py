"""Unit tests for the OLAP query builders."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.errors import PlanError
from repro.gmdj.expression import LiteralBase
from repro.queries.olap import (
    QueryBuilder,
    group_by_query,
    key_condition,
    windowed_comparison_query,
)
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.operators import group_by
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=200, seed=41)
TABLES = {"Flow": FLOW}


class TestGroupByQuery:
    def test_matches_sql_group_by(self):
        expression = group_by_query(
            "Flow",
            ["SourceAS"],
            [count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")],
        )
        result = expression.evaluate_centralized(TABLES)
        reference = group_by(
            FLOW, ["SourceAS"], [count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")]
        )
        assert_relations_equal(result, reference)

    def test_where_filters_detail_only(self):
        expression = group_by_query(
            "Flow",
            ["SourceAS"],
            [count_star("cnt")],
            where=detail.NumBytes > 10_000,
        )
        result = expression.evaluate_centralized(TABLES)
        # Groups are defined by the full table, so every SourceAS appears,
        # possibly with count 0 — unlike SQL GROUP BY over a filtered table.
        assert len(result) == len(FLOW.distinct_project(["SourceAS"]))
        assert any(row[1] == 0 for row in result.rows)

    def test_multi_key(self):
        expression = group_by_query("Flow", ["SourceAS", "DestAS"], [count_star("c")])
        result = expression.evaluate_centralized(TABLES)
        assert len(result) == len(FLOW.distinct_project(["SourceAS", "DestAS"]))


class TestKeyCondition:
    def test_builds_equality_chain(self):
        condition = key_condition(["a", "b"])
        assert condition.attrs("b") == frozenset(["a", "b"])
        assert condition.attrs("r") == frozenset(["a", "b"])


class TestQueryBuilder:
    def test_example1_shape(self):
        expression = (
            QueryBuilder("Flow", keys=["SourceAS", "DestAS"])
            .stage([count_star("cnt1"), AggSpec("sum", detail.NumBytes, "sum1")])
            .stage(
                [count_star("cnt2")],
                extra=detail.NumBytes >= base.sum1 / base.cnt1,
            )
            .build()
        )
        assert len(expression.steps) == 2
        result = expression.evaluate_centralized(TABLES)
        position = result.schema.position("cnt2")
        cnt1 = result.schema.position("cnt1")
        for row in result.rows:
            assert 0 < row[position] <= row[cnt1]

    def test_requires_stage(self):
        with pytest.raises(PlanError):
            QueryBuilder("Flow", keys=["SourceAS"]).build()

    def test_literal_base_relation(self):
        literal = Relation(Schema.of(("SourceAS", INT),), [(1,), (999,)])
        expression = (
            QueryBuilder("Flow", keys=["SourceAS"], base_relation=literal)
            .stage([count_star("c")])
            .build()
        )
        assert isinstance(expression.base_source, LiteralBase)
        result = expression.evaluate_centralized(TABLES)
        assert len(result) == 2

    def test_custom_blocks_stage(self):
        from repro.gmdj.blocks import MDBlock

        blocks = [MDBlock([count_star("c")], base.SourceAS == detail.SourceAS)]
        expression = (
            QueryBuilder("Flow", keys=["SourceAS"]).stage([], blocks=blocks).build()
        )
        assert expression.steps[0].blocks == tuple(blocks)

    def test_detail_table_override(self):
        expression = (
            QueryBuilder("Flow", keys=["SourceAS"])
            .stage([count_star("c")], detail_table="Flow2")
            .build()
        )
        assert expression.steps[0].detail == "Flow2"


class TestWindowedComparison:
    def test_semantics(self):
        expression = windowed_comparison_query(
            "Flow", ["SourceAS"], detail.NumBytes, fraction=0.10
        )
        result = expression.evaluate_centralized(TABLES)
        max_position = result.schema.position("m_max")
        count_position = result.schema.position("m_near_count")
        # Cross-check a group by hand.
        row = result.rows[0]
        group_value = row[0]
        group_rows = [
            flow_row
            for flow_row in FLOW.rows
            if flow_row[FLOW.schema.position("SourceAS")] == group_value
        ]
        position = FLOW.schema.position("NumBytes")
        maximum = max(flow_row[position] for flow_row in group_rows)
        near = sum(
            1 for flow_row in group_rows if flow_row[position] >= 0.9 * maximum
        )
        assert row[max_position] == maximum
        assert row[count_position] == near
        assert all(row[count_position] >= 1 for row in result.rows)

    def test_fraction_validated(self):
        with pytest.raises(PlanError):
            windowed_comparison_query("Flow", ["SourceAS"], detail.NumBytes, 1.5)

    def test_distributed_matches(self):
        cluster = SimulatedCluster.with_sites(4)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 4)
        )
        expression = windowed_comparison_query(
            "Flow", ["SourceAS"], detail.NumBytes, fraction=0.25
        )
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, OptimizationOptions.all())
        assert_relations_equal(reference, result.relation)
