"""Tests for the OLAP SQL dialect."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.queries.olap import QueryBuilder
from repro.queries.sql import SqlError, parse_olap_query, tokenize
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=250, seed=71)
TABLES = {"Flow": FLOW}


class TestTokenizer:
    def test_kinds(self):
        tokens = tokenize("SELECT x, COUNT(*) AS c FROM t WHERE v >= 1.5")
        kinds = [token.kind for token in tokens]
        assert kinds[0] == "kw"
        assert kinds[-1] == "eof"
        values = [token.value for token in tokens]
        assert "count" not in values  # COUNT stays an ident (case kept)
        assert "COUNT" in values

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "'it''s'"

    def test_unexpected_character(self):
        with pytest.raises(SqlError) as info:
            tokenize("SELECT #")
        assert "offset" in str(info.value)


class TestParsing:
    def test_simple_group_by(self):
        expression = parse_olap_query(
            "SELECT SourceAS, COUNT(*) AS cnt, AVG(NumBytes) AS m "
            "FROM Flow GROUP BY SourceAS"
        )
        assert expression.key == ("SourceAS",)
        assert len(expression.steps) == 1
        reference = (
            QueryBuilder("Flow", ["SourceAS"])
            .stage([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")])
            .build()
        )
        assert_relations_equal(
            expression.evaluate_centralized(TABLES),
            reference.evaluate_centralized(TABLES),
        )

    def test_correlated_then_stage(self):
        expression = parse_olap_query(
            "SELECT SourceAS, COUNT(*) AS cnt, AVG(NumBytes) AS m "
            "FROM Flow GROUP BY SourceAS "
            "THEN SELECT COUNT(*) AS big WHERE NumBytes >= m"
        )
        assert len(expression.steps) == 2
        reference = (
            QueryBuilder("Flow", ["SourceAS"])
            .stage([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")])
            .stage([count_star("big")], extra=detail.NumBytes >= base.m)
            .build()
        )
        assert_relations_equal(
            expression.evaluate_centralized(TABLES),
            reference.evaluate_centralized(TABLES),
        )

    def test_detail_where_on_first_stage(self):
        expression = parse_olap_query(
            "SELECT SourceAS, COUNT(*) AS cnt FROM Flow "
            "WHERE DestAS IN (0, 1, 2) GROUP BY SourceAS"
        )
        reference = (
            QueryBuilder("Flow", ["SourceAS"])
            .stage([count_star("cnt")], extra=detail.DestAS.is_in([0, 1, 2]))
            .build()
        )
        assert_relations_equal(
            expression.evaluate_centralized(TABLES),
            reference.evaluate_centralized(TABLES),
        )

    def test_multi_key_and_arithmetic(self):
        expression = parse_olap_query(
            "SELECT SourceAS, DestAS, SUM(NumBytes) AS total, COUNT(*) AS c "
            "FROM Flow GROUP BY SourceAS, DestAS "
            "THEN SELECT COUNT(*) AS above WHERE NumBytes * 2 >= total / c"
        )
        result = expression.evaluate_centralized(TABLES)
        assert set(result.schema.names) == {
            "SourceAS",
            "DestAS",
            "total",
            "c",
            "above",
        }

    def test_between_and_boolean_connectives(self):
        expression = parse_olap_query(
            "SELECT SourceAS, COUNT(*) AS c FROM Flow "
            "WHERE NumBytes BETWEEN 100 AND 5000 AND NOT DestAS = 3 "
            "GROUP BY SourceAS"
        )
        reference = (
            QueryBuilder("Flow", ["SourceAS"])
            .stage(
                [count_star("c")],
                extra=detail.NumBytes.between(100, 5000)
                & ~(detail.DestAS == 3),
            )
            .build()
        )
        assert_relations_equal(
            expression.evaluate_centralized(TABLES),
            reference.evaluate_centralized(TABLES),
        )

    def test_or_and_negative_literals(self):
        expression = parse_olap_query(
            "SELECT SourceAS, MIN(NumBytes - 100) AS adjusted FROM Flow "
            "WHERE DestAS = 0 OR DestAS = 1 GROUP BY SourceAS"
        )
        result = expression.evaluate_centralized(TABLES)
        assert "adjusted" in result.schema

    def test_is_null_and_not_in(self):
        expression = parse_olap_query(
            "SELECT SourceAS, COUNT(*) AS c FROM Flow "
            "WHERE NOT DestAS IN (7) AND NumBytes IS NOT NULL "
            "GROUP BY SourceAS"
        )
        result = expression.evaluate_centralized(TABLES)
        assert len(result) == len(FLOW.distinct_project(["SourceAS"]))

    def test_plain_select_items_must_be_keys(self):
        with pytest.raises(SqlError):
            parse_olap_query(
                "SELECT DestAS, COUNT(*) AS c FROM Flow GROUP BY SourceAS"
            )

    def test_needs_an_aggregate(self):
        with pytest.raises(SqlError):
            parse_olap_query("SELECT SourceAS FROM Flow GROUP BY SourceAS")

    def test_star_only_for_count(self):
        with pytest.raises(SqlError):
            parse_olap_query("SELECT SourceAS, SUM(*) AS s FROM Flow GROUP BY SourceAS")

    def test_unknown_aggregate(self):
        with pytest.raises(SqlError):
            parse_olap_query(
                "SELECT SourceAS, FANCY(NumBytes) AS f FROM Flow GROUP BY SourceAS"
            )

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse_olap_query(
                "SELECT SourceAS, COUNT(*) AS c FROM Flow GROUP BY SourceAS EXTRA"
            )

    def test_missing_group_by(self):
        with pytest.raises(SqlError):
            parse_olap_query("SELECT SourceAS, COUNT(*) AS c FROM Flow")

    def test_aggregate_requires_alias(self):
        with pytest.raises(SqlError):
            parse_olap_query("SELECT SourceAS, COUNT(*) FROM Flow GROUP BY SourceAS")


class TestScoping:
    def test_earlier_outputs_resolve_to_base(self):
        expression = parse_olap_query(
            "SELECT SourceAS, AVG(NumBytes) AS m FROM Flow GROUP BY SourceAS "
            "THEN SELECT COUNT(*) AS c1 WHERE NumBytes >= m "
            "THEN SELECT COUNT(*) AS c2 WHERE NumBytes >= m AND c1 > 0"
        )
        third = expression.steps[2].blocks[0].condition
        assert "m" in third.attrs("b")
        assert "c1" in third.attrs("b")
        assert "NumBytes" in third.attrs("r")

    def test_aggregate_inputs_always_detail(self):
        # Even if an earlier output shadows a detail attribute name, the
        # aggregate input must stay on the detail side.
        expression = parse_olap_query(
            "SELECT SourceAS, MAX(NumBytes) AS NumBytes2 FROM Flow GROUP BY SourceAS "
            "THEN SELECT SUM(NumBytes) AS s WHERE NumBytes = NumBytes2"
        )
        spec = expression.steps[1].blocks[0].aggregates[0]
        assert spec.input_expr.attrs("r") == frozenset(["NumBytes"])


class TestEndToEnd:
    def test_distributed_execution_of_parsed_query(self):
        cluster = SimulatedCluster.with_sites(4)
        cluster.load_partitioned(
            "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 4)
        )
        expression = parse_olap_query(
            "SELECT SourceAS, COUNT(*) AS cnt, AVG(NumBytes) AS m "
            "FROM Flow GROUP BY SourceAS "
            "THEN SELECT COUNT(*) AS big, MAX(NumBytes) AS top "
            "WHERE NumBytes >= m * 1.5"
        )
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, OptimizationOptions.all())
        assert_relations_equal(reference, result.relation)
        assert result.plan.synchronization_count == 1  # fully sync-reduced
