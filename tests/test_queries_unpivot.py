"""Unit tests for unpivot / marginal distribution queries."""

import pytest

from repro.errors import PlanError
from repro.queries.unpivot import combine_marginals, marginal_queries
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import detail
from repro.relalg.operators import group_by
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema

DATA = Relation(
    Schema.of(("proto", STR), ("port", INT), ("bytes", FLOAT)),
    [
        ("tcp", 80, 100.0),
        ("tcp", 443, 50.0),
        ("udp", 53, 10.0),
        ("tcp", 80, 25.0),
        ("udp", None, 5.0),
    ],
)
AGGS = [count_star("cnt"), AggSpec("sum", detail.bytes, "total")]
TABLES = {"T": DATA}


class TestMarginalQueries:
    def test_one_query_per_attribute(self):
        queries = marginal_queries("T", ["proto", "port"], AGGS)
        assert [attribute for attribute, _query in queries] == ["proto", "port"]

    def test_needs_attributes(self):
        with pytest.raises(PlanError):
            marginal_queries("T", [], AGGS)

    def test_each_marginal_is_a_group_by(self):
        queries = dict(marginal_queries("T", ["proto"], AGGS))
        result = queries["proto"].evaluate_centralized(TABLES)
        reference = group_by(DATA, ["proto"], AGGS)
        assert result.same_rows_any_order_of_columns(reference)


class TestCombineMarginals:
    def make_combined(self):
        attributes = ["proto", "port"]
        queries = dict(marginal_queries("T", attributes, AGGS))
        results = {
            attribute: query.evaluate_centralized(TABLES)
            for attribute, query in queries.items()
        }
        return combine_marginals(attributes, AGGS, results)

    def test_schema(self):
        combined = self.make_combined()
        assert combined.schema.names == ("attribute", "value", "cnt", "total")
        assert combined.schema["value"].type == STR

    def test_stacked_rows(self):
        combined = self.make_combined()
        lookup = {
            (row[0], row[1]): (row[2], row[3]) for row in combined.rows
        }
        assert lookup[("proto", "tcp")] == (3, 175.0)
        assert lookup[("proto", "udp")] == (2, 15.0)
        assert lookup[("port", "80")] == (2, 125.0)
        # GMDJ conditions use SQL *comparison* semantics: NULL == NULL is
        # false, so the NULL group exists (distinct keeps it) but matches
        # no detail rows — unlike SQL GROUP BY, which pools NULLs.
        assert lookup[("port", "NULL")] == (0, None)

    def test_row_count(self):
        combined = self.make_combined()
        # 2 protos + 4 distinct ports (incl. NULL)
        assert len(combined) == 6

    def test_missing_result_raises(self):
        with pytest.raises(PlanError):
            combine_marginals(["proto"], AGGS, {})
