"""Tests for CSV import/export."""

import datetime

import pytest
from hypothesis import given, settings

from repro.errors import SerializationError
from repro.relalg.io import from_csv_text, read_csv, to_csv_text, write_csv
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Schema
from test_property_codec import relations

FULL = Relation(
    Schema.of(("i", INT), ("f", FLOAT), ("s", STR), ("b", BOOL), ("d", DATE)),
    [
        (1, 2.5, "hello", True, datetime.date(2002, 3, 1)),
        (None, None, None, None, None),
        (-7, 0.0, "comma, quoted \"x\"", False, datetime.date(1999, 12, 31)),
    ],
)


class TestRoundTrip:
    def test_text_round_trip(self):
        decoded = from_csv_text(to_csv_text(FULL))
        assert decoded.schema == FULL.schema
        assert decoded.rows == FULL.rows

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "data.csv")
        write_csv(FULL, path)
        decoded = read_csv(path)
        assert decoded.rows == FULL.rows

    def test_empty_relation(self):
        empty = Relation.empty(FULL.schema)
        decoded = from_csv_text(to_csv_text(empty))
        assert decoded.schema == FULL.schema
        assert decoded.rows == []

    @given(relations())
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, relation):
        # Strings with embedded newlines/quotes must survive CSV quoting.
        decoded = from_csv_text(to_csv_text(relation))
        assert decoded.schema == relation.schema
        for original, parsed in zip(relation.rows, decoded.rows):
            for original_value, parsed_value in zip(original, parsed):
                if isinstance(original_value, float):
                    assert parsed_value == pytest.approx(original_value, nan_ok=True)
                elif original_value == "":
                    # Empty string is indistinguishable from NULL in CSV.
                    assert parsed_value in ("", None)
                else:
                    assert parsed_value == original_value


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(SerializationError):
            from_csv_text("")

    def test_untyped_header(self):
        with pytest.raises(SerializationError):
            from_csv_text("a,b\n1,2\n")

    def test_field_count_mismatch(self):
        with pytest.raises(SerializationError) as info:
            from_csv_text("a:int,b:int\n1\n")
        assert "line 2" in str(info.value)

    def test_bad_value(self):
        with pytest.raises(SerializationError) as info:
            from_csv_text("a:int\nnope\n")
        assert "line 2" in str(info.value)

    def test_bad_bool(self):
        with pytest.raises(SerializationError):
            from_csv_text("a:bool\nmaybe\n")
