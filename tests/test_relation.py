"""Unit tests for the Relation row store."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relalg.expressions import col
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema

SCHEMA = Schema.of(("k", INT), ("v", FLOAT), ("name", STR))
ROWS = [
    (1, 10.0, "a"),
    (1, 20.0, "b"),
    (2, 5.0, "a"),
    (2, None, "c"),
]


def make():
    return Relation(SCHEMA, ROWS)


class TestConstruction:
    def test_basic(self):
        relation = make()
        assert len(relation) == 4
        assert relation.schema is SCHEMA

    def test_validate_catches_bad_rows(self):
        with pytest.raises(TypeMismatchError):
            Relation(SCHEMA, [(1, 2.0, 3)], validate=True)

    def test_rows_are_tuples_even_from_lists(self):
        relation = Relation(SCHEMA, [[1, 2.0, "x"]])
        assert isinstance(relation.rows[0], tuple)

    def test_requires_schema(self):
        with pytest.raises(SchemaError):
            Relation(("k",), [])

    def test_from_dicts_fills_missing_with_none(self):
        relation = Relation.from_dicts(SCHEMA, [{"k": 1}])
        assert relation.rows == [(1, None, None)]

    def test_infer(self):
        relation = Relation.infer([{"a": 1, "b": "x"}, {"a": 2, "b": None}])
        assert relation.schema["a"].type == INT
        assert relation.schema["b"].type == STR

    def test_infer_empty_needs_names(self):
        with pytest.raises(SchemaError):
            Relation.infer([])

    def test_empty(self):
        assert len(Relation.empty(SCHEMA)) == 0

    def test_to_dicts_round_trip(self):
        relation = make()
        assert Relation.from_dicts(SCHEMA, relation.to_dicts()).same_rows(relation)


class TestAccessors:
    def test_column(self):
        assert make().column("k") == [1, 1, 2, 2]

    def test_row_dict(self):
        assert make().row_dict(0) == {"k": 1, "v": 10.0, "name": "a"}

    def test_iteration(self):
        assert list(make())[0] == (1, 10.0, "a")


class TestOperators:
    def test_select(self):
        result = make().select(col.k == 1)
        assert len(result) == 2

    def test_select_null_comparison_excludes(self):
        result = make().select(col.v > 0)
        assert len(result) == 3  # the NULL v row is excluded

    def test_select_fn(self):
        result = make().select_fn(lambda row: row[0] == 2)
        assert len(result) == 2

    def test_project_is_multiset(self):
        result = make().project(["k"])
        assert result.rows == [(1,), (1,), (2,), (2,)]

    def test_project_reorders(self):
        result = make().project(["name", "k"])
        assert result.schema.names == ("name", "k")
        assert result.rows[0] == ("a", 1)

    def test_distinct(self):
        relation = Relation(SCHEMA, ROWS + ROWS)
        assert len(relation.distinct()) == 4

    def test_distinct_project(self):
        result = make().distinct_project(["k"])
        assert result.rows == [(1,), (2,)]

    def test_union_all(self):
        combined = make().union_all(make())
        assert len(combined) == 8

    def test_union_all_schema_mismatch(self):
        other = Relation(Schema.of(("k", INT)), [(1,)])
        with pytest.raises(SchemaError):
            make().union_all(other)

    def test_extend(self):
        result = make().extend("double_v", FLOAT, col.v * 2)
        assert result.schema.names[-1] == "double_v"
        assert result.rows[0][-1] == 20.0
        assert result.rows[3][-1] is None

    def test_rename(self):
        renamed = make().rename({"k": "key"})
        assert "key" in renamed.schema
        assert renamed.rows == make().rows

    def test_sorted_by(self):
        result = make().sorted_by(["v"])
        assert result.rows[0][1] is None  # NULLs first
        assert result.rows[-1][1] == 20.0

    def test_sorted_by_descending(self):
        result = make().sorted_by(["v"], descending=True)
        assert result.rows[0][1] == 20.0

    def test_limit(self):
        assert len(make().limit(2)) == 2


class TestComparison:
    def test_same_rows_ignores_order(self):
        shuffled = Relation(SCHEMA, list(reversed(ROWS)))
        assert make().same_rows(shuffled)

    def test_same_rows_respects_multiplicity(self):
        duplicated = Relation(SCHEMA, ROWS + [ROWS[0]])
        assert not make().same_rows(duplicated)

    def test_same_rows_any_order_of_columns(self):
        reordered = make().project(["name", "v", "k"])
        assert make().same_rows_any_order_of_columns(reordered)

    def test_same_rows_any_order_of_columns_different_attrs(self):
        other = make().rename({"k": "key"})
        assert not make().same_rows_any_order_of_columns(other)


class TestPretty:
    def test_pretty_contains_headers_and_null(self):
        text = make().pretty()
        assert "name" in text
        assert "NULL" in text

    def test_pretty_truncates(self):
        text = make().pretty(max_rows=2)
        assert "2 more rows" in text

    def test_repr(self):
        assert "4 rows" in repr(make())
