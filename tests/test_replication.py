"""Tests for replicated (dimension) tables."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.errors import CatalogError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.relalg.schema import FLOAT, INT, STR, Schema
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=200, seed=141)

AS_INFO = Relation(
    Schema.of(("SourceAS", INT), ("Tier", STR), ("Weight", FLOAT)),
    [(value, "big" if value % 3 == 0 else "small", float(value % 5 + 1)) for value in range(16)],
)


def build_cluster():
    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned(
        "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 4)
    )
    cluster.load_replicated("ASInfo", AS_INFO)
    return cluster


class TestCatalogFlags:
    def test_register_replicated(self):
        cluster = build_cluster()
        assert cluster.catalog.is_replicated("ASInfo")
        assert not cluster.catalog.is_replicated("Flow")
        assert cluster.catalog.sites("ASInfo") == cluster.site_ids

    def test_replicated_rejects_distribution_facts(self):
        from repro.warehouse.catalog import DistributionCatalog

        catalog = DistributionCatalog()
        with pytest.raises(CatalogError):
            catalog.register(
                "T", ["s0"], partition_attrs=["a"], replicated=True
            )

    def test_conceptual_table_is_one_replica(self):
        cluster = build_cluster()
        assert cluster.conceptual_table("ASInfo").same_rows(AS_INFO)


class TestReplicatedQueries:
    def replicated_query(self):
        step = MDStep(
            "ASInfo",
            [
                MDBlock(
                    [count_star("ases"), AggSpec("sum", detail.Weight, "weight")],
                    base.Tier == detail.Tier,
                )
            ],
        )
        return GMDJExpression(DistinctBase("ASInfo", ["Tier"]), [step])

    @pytest.mark.parametrize(
        "options",
        [OptimizationOptions.none(), OptimizationOptions.all()],
        ids=["none", "all"],
    )
    def test_single_site_answers(self, options):
        cluster = build_cluster()
        expression = self.replicated_query()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query(cluster, expression, options)
        assert_relations_equal(reference, result.relation)
        for md_round in result.plan.rounds:
            assert len(md_round.sites) == 1

    def test_base_round_uses_one_replica(self):
        cluster = build_cluster()
        plan_result = execute_query(
            cluster, self.replicated_query(), OptimizationOptions.none()
        )
        assert len(plan_result.plan.base.sites) == 1

    def test_mixed_fact_and_dimension_chain(self):
        # Round 1 over the partitioned fact table, round 2 over the
        # replicated dimension table.
        flow_step = MDStep(
            "Flow",
            [
                MDBlock(
                    [count_star("flows")],
                    base.SourceAS == detail.SourceAS,
                )
            ],
        )
        info_step = MDStep(
            "ASInfo",
            [
                MDBlock(
                    [AggSpec("max", detail.Weight, "weight")],
                    (base.SourceAS == detail.SourceAS) & (base.flows > 0),
                )
            ],
        )
        expression = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]), [flow_step, info_step]
        )
        cluster = build_cluster()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        for options in (OptimizationOptions.none(), OptimizationOptions.all()):
            cluster.reset_network()
            result = execute_query(cluster, expression, options)
            assert_relations_equal(reference, result.relation)
        assert len(result.plan.rounds[0].sites) == 4
        assert len(result.plan.rounds[1].sites) == 1

    def test_replication_cuts_traffic(self):
        cluster = build_cluster()
        expression = self.replicated_query()
        result = execute_query(cluster, expression, OptimizationOptions.none())
        # Hypothetical non-replicated handling would involve 4 sites; a
        # single-site plan ships a quarter of the round traffic. Sanity:
        # total tuples shipped is bounded by 3x the result size
        # (base up, fragment down, H up).
        assert result.stats.tuples_total <= 3 * len(result.relation)
