"""Tests for the markdown report generator."""

import io

import pytest

from repro.bench.report import make_markdown_report
from repro.cli import main


@pytest.fixture(scope="module")
def report() -> str:
    # Generated once: each figure sweep is moderately expensive.
    return make_markdown_report(scale=0.0002, participating=(1, 3))


class TestMarkdownReport:
    def test_contains_all_sections(self, report):
        assert "# Regenerated experiment report" in report
        for heading in (
            "## Figure 2",
            "### Extension: distribution-aware reduction",
            "## Figure 3",
            "## Figure 4",
            "## Figure 5",
            "### constant groups",
        ):
            assert heading in report

    def test_formula_table_present(self, report):
        assert "traffic formula" in report
        assert "| n | c | predicted | measured | error |" in report

    def test_exponent_lines(self, report):
        assert "growth exponents" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|") and not set(line) <= {"|", "-", " "}:
                # Every data row has the same number of pipes as a table row.
                assert line.count("|") >= 3

    def test_cli_report_command(self):
        out = io.StringIO()
        code = main(["report", "--scale", "0.0002"], out=out)
        assert code == 0
        assert "# Regenerated experiment report" in out.getvalue()
