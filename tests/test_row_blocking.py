"""Tests for row blocking and streaming synchronization."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import (
    ExecutionConfig,
    OptimizationOptions,
    SimulatedCluster,
    execute_query,
)
from repro.errors import PlanError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.gmdj.operator import SyncSession, evaluate, evaluate_sub
from repro.net.message import HEADER_BYTES
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.relalg.relation import Relation
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=300, seed=61)
KEY = base.SourceAS == detail.SourceAS


def expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )
    outer = MDStep(
        "Flow", [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.m))]
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])


def build_cluster():
    cluster = SimulatedCluster.with_sites(4)
    cluster.load_partitioned(
        "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), 4)
    )
    return cluster


class TestExecutionConfig:
    def test_validation(self):
        with pytest.raises(PlanError):
            ExecutionConfig(row_block_size=-1)

    def test_none_rejected(self):
        # 0 is the single "unlimited" sentinel; None is a contract error.
        with pytest.raises(PlanError):
            ExecutionConfig(row_block_size=None)

    def test_blocks_of_unlimited(self):
        relation = FLOW
        assert ExecutionConfig().blocks_of(relation) == [relation]

    def test_blocks_of_split(self):
        blocks = ExecutionConfig(row_block_size=100).blocks_of(FLOW)
        assert [len(block) for block in blocks] == [100, 100, 100]
        reassembled = blocks[0]
        for block in blocks[1:]:
            reassembled = reassembled.union_all(block)
        assert reassembled.same_rows(FLOW)

    def test_blocks_of_empty_relation(self):
        empty = Relation.empty(FLOW.schema)
        assert ExecutionConfig(row_block_size=10).blocks_of(empty) == [empty]


class TestBlockedExecution:
    @pytest.mark.parametrize("block_size", [1, 3, 7, 1000])
    def test_result_independent_of_block_size(self, block_size):
        cluster = build_cluster()
        reference = expression().evaluate_centralized(cluster.conceptual_tables())
        for options in (OptimizationOptions.none(), OptimizationOptions.all()):
            cluster.reset_network()
            result = execute_query(
                cluster,
                expression(),
                options,
                ExecutionConfig(row_block_size=block_size),
            )
            assert_relations_equal(reference, result.relation)

    def test_blocking_costs_only_headers(self):
        cluster = build_cluster()
        whole = execute_query(
            cluster, expression(), OptimizationOptions.none(), ExecutionConfig()
        )
        cluster.reset_network()
        blocked = execute_query(
            cluster,
            expression(),
            OptimizationOptions.none(),
            ExecutionConfig(row_block_size=2),
        )
        assert blocked.stats.tuples_total == whole.stats.tuples_total
        overhead = blocked.stats.bytes_total - whole.stats.bytes_total
        assert overhead > 0
        # Overhead is message framing: headers plus the repeated schema
        # dictionary of each extra block.
        extra_messages = overhead / HEADER_BYTES
        assert extra_messages < whole.stats.tuples_total  # sane magnitude


class TestSyncSession:
    BLOCKS = [
        MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)
    ]

    def test_absorb_order_irrelevant(self):
        base_relation = FLOW.distinct_project(["SourceAS"])
        pieces = [Relation(FLOW.schema, FLOW.rows[start::3]) for start in range(3)]
        subs = [
            evaluate_sub(base_relation, piece, self.BLOCKS)[0] for piece in pieces
        ]
        forward = SyncSession(base_relation, ["SourceAS"], self.BLOCKS)
        for sub in subs:
            forward.absorb(sub)
        backward = SyncSession(base_relation, ["SourceAS"], self.BLOCKS)
        for sub in reversed(subs):
            backward.absorb(sub)
        assert forward.finish().same_rows(backward.finish())

    def test_row_blocks_equal_whole_fragments(self):
        base_relation = FLOW.distinct_project(["SourceAS"])
        sub, _touched = evaluate_sub(base_relation, FLOW, self.BLOCKS)
        whole = SyncSession(base_relation, ["SourceAS"], self.BLOCKS)
        whole.absorb(sub)
        blocked = SyncSession(base_relation, ["SourceAS"], self.BLOCKS)
        for start in range(0, len(sub.rows), 5):
            blocked.absorb(Relation(sub.schema, sub.rows[start : start + 5]))
        assert_relations_equal(whole.finish(), blocked.finish())

    def test_no_absorb_gives_empty_aggregates(self):
        base_relation = FLOW.distinct_project(["SourceAS"])
        session = SyncSession(base_relation, ["SourceAS"], self.BLOCKS)
        result = session.finish()
        for row in result.rows:
            assert row[-2] == 0
            assert row[-1] is None

    def test_matches_direct_evaluation(self):
        base_relation = FLOW.distinct_project(["SourceAS"])
        sub, _touched = evaluate_sub(base_relation, FLOW, self.BLOCKS)
        session = SyncSession(base_relation, ["SourceAS"], self.BLOCKS)
        session.absorb(sub)
        assert_relations_equal(
            session.finish(), evaluate(base_relation, FLOW, self.BLOCKS)
        )
