"""Cost-driven merge-topology scheduling (scheduler + costing + views)."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    StatisticsStore,
    choose_topology,
    estimate_topology_costs,
    execute_plan,
    execute_plan_scheduled,
    execute_query_hierarchical,
    execute_query_scheduled,
    execute_query_spanning,
    plan_query,
    plan_query_scheduled,
)
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.hierarchy import TreeTopology
from repro.distributed.scheduler import (
    COMBINER_PREFIX,
    RELAY_PREFIX,
    execution_stats_from_spanning,
    execution_stats_from_tree,
)
from repro.distributed.spanning import chain_tree
from repro.errors import PlanError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.net.costmodel import LAN, WAN, CostModel
from repro.net.faults import FaultPlan
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=360, seed=91, routers=8)
KEY = base.SourceAS == detail.SourceAS

#: Root link saturated by cheap bandwidth: latency negligible, so the
#: merged-stream cap (|Q| rows per region/relay) dominates the ranking.
CONTENDED = CostModel(latency_s=0.0001, bandwidth_bytes_per_s=2.0e4)


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )
    outer = MDStep(
        "Flow", [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.m))]
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])


def build_cluster(sites=8):
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned(
        "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), sites)
    )
    return cluster


class TestTopologyEstimates:
    def test_flat_priced_first_with_alternatives(self):
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        estimates = estimate_topology_costs(
            plan, StatisticsStore.from_cluster(cluster)
        )
        assert estimates[0].label == "flat"
        labels = [estimate.label for estimate in estimates]
        assert "hierarchical:2" in labels and "chain:2" in labels
        assert all(estimate.response_time_s > 0 for estimate in estimates)

    def test_candidate_gating_by_site_count(self):
        cluster = build_cluster(3)
        plan = plan_query(correlated_expression(), cluster.catalog)
        labels = [
            estimate.label
            for estimate in estimate_topology_costs(
                plan,
                StatisticsStore.from_cluster(cluster),
                region_counts=(2, 4),
                fanouts=(2, 3),
            )
        ]
        # 4 regions over 3 sites and fanout 3 over 3 sites are degenerate.
        assert "hierarchical:2" in labels
        assert "hierarchical:4" not in labels
        assert "chain:2" in labels
        assert "chain:3" not in labels

    def test_wan_latency_dominates_small_data(self):
        """On the default WAN every extra tier costs a round trip the
        tiny payloads cannot buy back, so flat wins."""
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        estimates = estimate_topology_costs(
            plan, StatisticsStore.from_cluster(cluster), model=WAN
        )
        flat = next(e for e in estimates if e.kind == "flat")
        assert all(
            flat.response_time_s <= estimate.response_time_s
            for estimate in estimates
        )


class TestChooseTopology:
    def test_wan_small_data_chooses_flat(self):
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        choice = choose_topology(plan, StatisticsStore.from_cluster(cluster))
        assert choice.topology == "flat"
        assert choice.estimated_saving_s == 0.0
        assert "flat star is cheapest" in choice.reason

    def test_contended_root_link_chooses_combiners(self):
        """When the root link's serialization dominates (negligible
        latency, scarce bandwidth), merging sub-results below the root
        caps each root stream at |Q| rows and a tree wins."""
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        choice = choose_topology(
            plan, StatisticsStore.from_cluster(cluster), model=CONTENDED
        )
        assert choice.chosen.kind != "flat"
        assert choice.estimated_saving_s > 0
        flat = choice.flat
        assert choice.chosen.root_link_bytes < flat.root_link_bytes

    def test_allow_non_flat_false_pins_flat(self):
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        choice = choose_topology(
            plan,
            StatisticsStore.from_cluster(cluster),
            model=CONTENDED,
            allow_non_flat=False,
        )
        assert choice.topology == "flat"
        assert choice.candidates == (choice.chosen,)

    def test_choice_dict_round_trips(self):
        cluster = build_cluster(4)
        plan = plan_query(correlated_expression(), cluster.catalog)
        record = choose_topology(
            plan, StatisticsStore.from_cluster(cluster)
        ).to_dict()
        assert record["topology"] == "flat"
        assert record["chosen"]["kind"] == "flat"
        assert len(record["candidates"]) >= 3


TOPOLOGIES = ["flat", "hierarchical:2", "hierarchical:4", "chain:2", "chain:3"]


class TestScheduledExecution:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_every_topology_is_bit_identical_to_flat(self, topology):
        cluster = build_cluster(8)
        plan = plan_query(
            correlated_expression(), cluster.catalog, OptimizationOptions.all()
        )
        reference = execute_plan(cluster, plan)
        cluster.reset_network()
        result = execute_plan_scheduled(cluster, plan, topology=topology)
        assert_relations_equal(reference.relation, result.relation)
        assert result.stats.topology == topology
        assert result.topology_choice.topology == topology
        assert result.topology_choice.measured_response_time_s > 0

    def test_auto_records_choice_and_label_agree(self):
        cluster = build_cluster(8)
        result = execute_query_scheduled(
            cluster, correlated_expression(), OptimizationOptions.all()
        )
        choice = result.topology_choice
        assert result.stats.topology == choice.topology
        assert result.stats.to_dict()["topology"] == choice.topology
        assert choice.measured_root_link_bytes is not None
        assert len(choice.candidates) >= 3

    def test_auto_executes_the_contended_winner(self):
        # Unoptimized plans ship the most tuples, so the contended root
        # link makes a tree the clear winner — and auto must execute it.
        cluster = build_cluster(8)
        result = execute_query_scheduled(
            cluster,
            correlated_expression(),
            OptimizationOptions.none(),
            model=CONTENDED,
        )
        choice = result.topology_choice
        assert choice.chosen.kind != "flat"
        assert result.stats.topology == choice.topology
        reference = execute_query_scheduled(
            build_cluster(8),
            correlated_expression(),
            OptimizationOptions.none(),
            topology="flat",
        )
        assert_relations_equal(reference.relation, result.relation)

    def test_hierarchical_stats_view_matches_native_run(self):
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        scheduled = execute_plan_scheduled(
            cluster, plan, topology="hierarchical:2"
        )
        native = execute_query_hierarchical(
            build_cluster(8),
            TreeTopology.balanced(cluster.site_ids, 2),
            correlated_expression(),
        )
        assert scheduled.stats.bytes_total == native.stats.bytes_total
        sites = {
            site_id
            for round_stats in scheduled.stats.rounds
            for site_id in round_stats.sites
        }
        assert any(site_id.startswith(COMBINER_PREFIX) for site_id in sites)
        assert "site0" in sites

    def test_chain_stats_view_matches_native_run(self):
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        scheduled = execute_plan_scheduled(cluster, plan, topology="chain:2")
        native = execute_query_spanning(
            build_cluster(8),
            chain_tree(list(cluster.site_ids), 2),
            correlated_expression(),
        )
        assert scheduled.stats.bytes_total == native.stats.bytes_total
        sites = {
            site_id
            for round_stats in scheduled.stats.rounds
            for site_id in round_stats.sites
        }
        assert any(site_id.startswith(RELAY_PREFIX) for site_id in sites)

    @pytest.mark.parametrize(
        "label", ["bogus", "hierarchical:0", "chain:-2", "tree:2", "chain:x"]
    )
    def test_malformed_topology_labels_raise(self, label):
        cluster = build_cluster(4)
        plan = plan_query(correlated_expression(), cluster.catalog)
        with pytest.raises(PlanError):
            execute_plan_scheduled(cluster, plan, topology=label)


class TestPinnedContexts:
    def test_faults_pin_auto_to_flat(self):
        cluster = build_cluster(8)
        cluster.install_faults(
            FaultPlan.stragglers(cluster.site_ids, seed=3, delay_s=0.0)
        )
        result = execute_query_scheduled(
            cluster,
            correlated_expression(),
            OptimizationOptions.all(),
            config=ExecutionConfig(failure_mode="retry"),
            model=CONTENDED,
        )
        assert result.stats.topology == "flat"
        assert "pinned to flat" in result.topology_choice.reason

    def test_faults_reject_forced_non_flat(self):
        cluster = build_cluster(8)
        cluster.install_faults(
            FaultPlan.stragglers(cluster.site_ids, seed=3, delay_s=0.0)
        )
        plan = plan_query(correlated_expression(), cluster.catalog)
        with pytest.raises(PlanError, match="fault"):
            execute_plan_scheduled(cluster, plan, topology="hierarchical:2")

    def test_speculation_pins_auto_to_flat(self):
        cluster = build_cluster(8)
        result = execute_query_scheduled(
            cluster,
            correlated_expression(),
            OptimizationOptions.all(),
            config=ExecutionConfig(speculation=True),
            model=CONTENDED,
        )
        assert result.stats.topology == "flat"
        assert "speculative" in result.topology_choice.reason


class TestPlannerEntryPoint:
    def test_plan_query_scheduled_returns_plan_and_choice(self):
        cluster = build_cluster(8)
        plan, choice = plan_query_scheduled(
            correlated_expression(),
            cluster.catalog,
            StatisticsStore.from_cluster(cluster),
            OptimizationOptions.all(),
        )
        assert plan.rounds
        assert choice.topology == "flat"
        cluster2 = build_cluster(8)
        _, contended = plan_query_scheduled(
            correlated_expression(),
            cluster2.catalog,
            StatisticsStore.from_cluster(cluster2),
            OptimizationOptions.none(),
            model=CONTENDED,
        )
        assert contended.chosen.kind != "flat"


class TestReportModelAgreement:
    """Regression for the report-time model bug: ``response_time_s``
    used to default to WAN regardless of the model the run was planned
    and executed under."""

    def test_hierarchical_report_uses_execution_model(self):
        cluster = build_cluster(8)
        result = execute_query_hierarchical(
            cluster,
            TreeTopology.balanced(cluster.site_ids, 2),
            correlated_expression(),
            model=LAN,
        )
        assert result.stats.response_time_s() == result.stats.response_time_s(
            LAN
        )
        assert result.stats.response_time_s() != result.stats.response_time_s(
            WAN
        )

    def test_spanning_report_uses_execution_model(self):
        cluster = build_cluster(8)
        result = execute_query_spanning(
            cluster,
            chain_tree(list(cluster.site_ids), 2),
            correlated_expression(),
            model=LAN,
        )
        assert result.stats.response_time_s() == result.stats.response_time_s(
            LAN
        )
        assert result.stats.response_time_s() != result.stats.response_time_s(
            WAN
        )

    def test_default_model_stays_wan(self):
        cluster = build_cluster(4)
        result = execute_query_hierarchical(
            cluster,
            TreeTopology.balanced(cluster.site_ids, 2),
            correlated_expression(),
        )
        assert result.stats.response_time_s() == result.stats.response_time_s(
            WAN
        )

    def test_scheduled_measurement_uses_requested_model(self):
        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        lan = execute_plan_scheduled(
            cluster, plan, topology="hierarchical:2", model=LAN
        )
        cluster.reset_network()
        wan = execute_plan_scheduled(
            cluster, plan, topology="hierarchical:2", model=WAN
        )
        assert (
            lan.topology_choice.measured_response_time_s
            < wan.topology_choice.measured_response_time_s
        )


class TestProfileIntegration:
    def test_profile_carries_topology_and_reason(self):
        from repro.obs.profile import build_profile, render_profile

        cluster = build_cluster(8)
        plan = plan_query(correlated_expression(), cluster.catalog)
        result = execute_plan_scheduled(
            cluster, plan, topology="hierarchical:2"
        )
        profile = build_profile(
            (), result.stats, topology_choice=result.topology_choice
        )
        assert profile.topology == "hierarchical:2"
        assert profile.topology_reason
        record = profile.to_dict()
        assert record["topology"] == "hierarchical:2"
        rendered = render_profile(profile)
        assert "merge topology [hierarchical:2]" in rendered
