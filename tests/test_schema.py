"""Unit tests for repro.relalg.schema."""

import datetime

import pytest

from repro.errors import SchemaError, TypeMismatchError, UnknownAttributeError
from repro.relalg.schema import (
    BOOL,
    DATE,
    FLOAT,
    INT,
    STR,
    Attribute,
    Schema,
    check_value,
    infer_type,
)


class TestAttribute:
    def test_construction(self):
        attribute = Attribute("price", FLOAT)
        assert attribute.name == "price"
        assert attribute.type == FLOAT

    def test_default_type_is_float(self):
        assert Attribute("x").type == FLOAT

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_non_string_name(self):
        with pytest.raises(SchemaError):
            Attribute(42)

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            Attribute("x", "decimal")

    def test_renamed_preserves_type(self):
        renamed = Attribute("a", INT).renamed("b")
        assert renamed == Attribute("b", INT)

    def test_is_hashable_and_frozen(self):
        attribute = Attribute("a", INT)
        assert hash(attribute) == hash(Attribute("a", INT))
        with pytest.raises(Exception):
            attribute.name = "b"


class TestInferType:
    def test_bool_before_int(self):
        assert infer_type(True) == BOOL
        assert infer_type(1) == INT

    def test_float(self):
        assert infer_type(1.5) == FLOAT

    def test_str(self):
        assert infer_type("x") == STR

    def test_date(self):
        assert infer_type(datetime.date(2002, 1, 1)) == DATE

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])


class TestCheckValue:
    def test_none_fits_all_types(self):
        for type_name in (INT, FLOAT, STR, BOOL, DATE):
            check_value(None, type_name)

    def test_int_fits_float(self):
        check_value(3, FLOAT)

    def test_float_does_not_fit_int(self):
        with pytest.raises(TypeMismatchError):
            check_value(3.5, INT)

    def test_bool_does_not_fit_int(self):
        with pytest.raises(TypeMismatchError):
            check_value(True, INT)

    def test_unknown_type_raises_schema_error(self):
        with pytest.raises(SchemaError):
            check_value(1, "bignum")


class TestSchema:
    def test_of_mixed_specs(self):
        schema = Schema.of(("a", INT), "b", Attribute("c", STR))
        assert schema.names == ("a", "b", "c")
        assert schema["b"].type == FLOAT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", INT), ("a", FLOAT))

    def test_len_iter_contains(self):
        schema = Schema.of("a", "b")
        assert len(schema) == 2
        assert [attribute.name for attribute in schema] == ["a", "b"]
        assert "a" in schema
        assert "z" not in schema

    def test_getitem_unknown_raises(self):
        schema = Schema.of("a")
        with pytest.raises(UnknownAttributeError) as info:
            schema["missing"]
        assert "missing" in str(info.value)
        assert "a" in str(info.value)

    def test_position_and_positions(self):
        schema = Schema.of("a", "b", "c")
        assert schema.position("b") == 1
        assert schema.positions(["c", "a"]) == (2, 0)

    def test_project_reorders(self):
        schema = Schema.of(("a", INT), ("b", STR), ("c", FLOAT))
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")
        assert projected["c"].type == FLOAT

    def test_rename(self):
        schema = Schema.of(("a", INT), ("b", STR))
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x", "b")
        assert renamed["x"].type == INT

    def test_rename_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Schema.of("a").rename({"zz": "y"})

    def test_concat(self):
        left = Schema.of("a")
        right = Schema.of("b")
        assert left.concat(right).names == ("a", "b")

    def test_concat_clash_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_equality_and_hash(self):
        assert Schema.of(("a", INT)) == Schema.of(("a", INT))
        assert Schema.of(("a", INT)) != Schema.of(("a", FLOAT))
        assert hash(Schema.of("a", "b")) == hash(Schema.of("a", "b"))

    def test_check_row_validates_length(self):
        schema = Schema.of("a", "b")
        with pytest.raises(SchemaError):
            schema.check_row((1.0,))

    def test_check_row_validates_types_with_attribute_name(self):
        schema = Schema.of(("a", INT),)
        with pytest.raises(TypeMismatchError) as info:
            schema.check_row(("oops",))
        assert "'a'" in str(info.value)

    def test_check_row_accepts_nulls(self):
        Schema.of(("a", INT), ("b", STR)).check_row((None, None))
