"""Unit tests for the wire codec."""

import datetime

import pytest

from repro.errors import SerializationError
from repro.net.serialize import decode_relation, encode_relation, wire_size
from repro.relalg.relation import Relation
from repro.relalg.schema import BOOL, DATE, FLOAT, INT, STR, Schema

FULL_SCHEMA = Schema.of(
    ("i", INT), ("f", FLOAT), ("s", STR), ("b", BOOL), ("d", DATE)
)


def round_trip(relation: Relation) -> Relation:
    return decode_relation(encode_relation(relation))


class TestRoundTrip:
    def test_all_types(self):
        relation = Relation(
            FULL_SCHEMA,
            [
                (1, 2.5, "hello", True, datetime.date(2002, 3, 1)),
                (-42, -0.125, "", False, datetime.date(1970, 1, 1)),
            ],
        )
        decoded = round_trip(relation)
        assert decoded.schema == relation.schema
        assert decoded.rows == relation.rows

    def test_nulls_everywhere(self):
        relation = Relation(FULL_SCHEMA, [(None,) * 5, (1, None, "x", None, None)])
        assert round_trip(relation).rows == relation.rows

    def test_empty_relation(self):
        relation = Relation.empty(FULL_SCHEMA)
        decoded = round_trip(relation)
        assert decoded.schema == relation.schema
        assert decoded.rows == []

    def test_large_ints(self):
        schema = Schema.of(("i", INT),)
        relation = Relation(schema, [(2**62,), (-(2**62),), (0,)])
        assert round_trip(relation).rows == relation.rows

    def test_unicode_strings(self):
        schema = Schema.of(("s", STR),)
        relation = Relation(schema, [("héllo wörld ☃",), ("日本語",)])
        assert round_trip(relation).rows == relation.rows

    def test_float_special_values(self):
        schema = Schema.of(("f", FLOAT),)
        relation = Relation(schema, [(1e300,), (-1e-300,), (0.0,)])
        assert round_trip(relation).rows == relation.rows

    def test_int_value_in_float_column(self):
        # SUM over an int column can ship through a FLOAT sub-column.
        schema = Schema.of(("f", FLOAT),)
        decoded = round_trip(Relation(schema, [(7,)]))
        assert decoded.rows == [(7.0,)]


class TestWireFormat:
    def test_wire_size_matches_encoding(self):
        relation = Relation(FULL_SCHEMA, [(1, 1.0, "a", True, None)])
        assert wire_size(relation) == len(encode_relation(relation))

    def test_size_grows_with_rows(self):
        schema = Schema.of(("i", INT),)
        small = Relation(schema, [(1,)] * 10)
        large = Relation(schema, [(1,)] * 100)
        assert wire_size(large) > wire_size(small)

    def test_varint_efficiency(self):
        schema = Schema.of(("i", INT),)
        small_values = Relation(schema, [(1,)] * 50)
        large_values = Relation(schema, [(2**40,)] * 50)
        assert wire_size(small_values) < wire_size(large_values)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            decode_relation(b"NOPE" + b"\x00" * 10)

    def test_bad_version(self):
        data = bytearray(encode_relation(Relation.empty(FULL_SCHEMA)))
        data[4] = 99
        with pytest.raises(SerializationError):
            decode_relation(bytes(data))

    def test_truncated(self):
        data = encode_relation(
            Relation(Schema.of(("s", STR),), [("hello world",)] * 3)
        )
        with pytest.raises(SerializationError):
            decode_relation(data[:-4])

    def test_trailing_garbage(self):
        data = encode_relation(Relation.empty(FULL_SCHEMA))
        with pytest.raises(SerializationError):
            decode_relation(data + b"\x00")

    def test_unencodable_value(self):
        schema = Schema.of(("s", STR),)
        relation = Relation(schema, [(3.14,)])  # not validated at build
        with pytest.raises(SerializationError):
            encode_relation(relation)
