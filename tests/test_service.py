"""Tests for the concurrent query service and its result cache.

The service's determinism contract is checked the strict way everywhere:
``.rows ==`` (bit-identical tuples, not multiset-with-tolerance),
because hits are served verbatim and refresh-upgraded answers must be
value-identical to a fresh evaluation over the grown data.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.flows import FlowConfig, generate_flows, router_partitioner
from repro.distributed import SimulatedCluster
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.executor import EXECUTORS
from repro.errors import AdmissionError, QueryTimeoutError, ServiceError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.obs import Tracer
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.service import FRESH, HIT, REFRESH, PlanSignature, QueryService

SITES = 3
FLOWS = 300

COUNT_BY_SOURCE = (
    "SELECT SourceAS, COUNT(*) AS cnt, SUM(NumPackets) AS packets "
    "FROM Flow GROUP BY SourceAS"
)
MAX_BY_DEST = (
    "SELECT DestAS, COUNT(*) AS cnt, MAX(NumPackets) AS biggest "
    "FROM Flow GROUP BY DestAS"
)


def build_cluster(sites: int = SITES, flow_count: int = FLOWS) -> SimulatedCluster:
    config = FlowConfig(flow_count=flow_count, router_count=sites)
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned(
        "Flow", generate_flows(config), router_partitioner(config)
    )
    return cluster


def make_delta(cluster, sites: int = SITES, count: int = 40, seed: int = 99):
    """Per-site delta rows split with the loading partitioner, so the
    appended rows respect the catalog's site predicates."""
    config = FlowConfig(flow_count=count, router_count=sites, seed=seed)
    rows = generate_flows(config)
    return dict(zip(cluster.site_ids, router_partitioner(config).split(rows)))


def grown_reference(sql, per_site, sites: int = SITES, flow_count: int = FLOWS):
    """Fresh serial evaluation on an identically loaded + grown cluster."""
    cluster = build_cluster(sites, flow_count)
    for site_id, delta in per_site.items():
        cluster.site(site_id).warehouse.append("Flow", delta)
    with QueryService(cluster, ExecutionConfig(executor="serial")) as service:
        return service.submit(sql).relation


# ---------------------------------------------------------------------------
# Cache correctness
# ---------------------------------------------------------------------------


class TestCache:
    def test_hit_is_bit_identical_to_fresh_evaluation(self):
        with QueryService(build_cluster()) as service:
            first = service.submit(COUNT_BY_SOURCE)
            second = service.submit(COUNT_BY_SOURCE)
        assert first.source == FRESH
        assert second.source == HIT
        assert second.from_cache
        assert second.relation.rows == first.relation.rows
        assert second.relation.schema.names == first.relation.schema.names

    def test_distinct_queries_get_distinct_slots(self):
        with QueryService(build_cluster()) as service:
            assert service.submit(COUNT_BY_SOURCE).source == FRESH
            assert service.submit(MAX_BY_DEST).source == FRESH
            assert service.submit(COUNT_BY_SOURCE).source == HIT
            assert service.submit(MAX_BY_DEST).source == HIT

    def test_commutatively_equal_expressions_share_one_slot(self):
        """AND order and comparison orientation are normalized away by
        the canonical fingerprint: the rewritten query is a cache hit."""
        key = base.SourceAS == detail.SourceAS
        extra = detail.NumPackets > 5
        aggs = [count_star("cnt"), AggSpec("sum", detail.NumPackets, "packets")]
        original = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]),
            [MDStep("Flow", [MDBlock(aggs, key & extra)])],
        )
        flipped = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]),
            [MDStep("Flow", [MDBlock(aggs, (5 < detail.NumPackets) & key)])],
        )
        assert original.fingerprint() == flipped.fingerprint()
        with QueryService(build_cluster()) as service:
            first = service.submit(original)
            second = service.submit(flipped)
        assert first.source == FRESH
        assert second.source == HIT
        assert second.relation.rows == first.relation.rows

    def test_append_upgrades_entry_via_refresh(self):
        cluster = build_cluster()
        with QueryService(cluster) as service:
            before = service.submit(COUNT_BY_SOURCE)
            per_site = make_delta(cluster)
            versions = service.append("Flow", per_site)
            assert set(versions) == set(cluster.site_ids)
            upgraded = service.submit(COUNT_BY_SOURCE)
            again = service.submit(COUNT_BY_SOURCE)
        assert upgraded.source == REFRESH
        assert upgraded.relation.rows != before.relation.rows
        assert upgraded.relation.rows == grown_reference(
            COUNT_BY_SOURCE, per_site
        ).rows
        # The upgraded entry is a plain hit afterwards.
        assert again.source == HIT
        assert again.relation.rows == upgraded.relation.rows

    def test_append_bypassing_the_service_is_a_miss_not_a_wrong_hit(self):
        cluster = build_cluster()
        with QueryService(cluster) as service:
            service.submit(COUNT_BY_SOURCE)
            per_site = make_delta(cluster)
            # Straight to the warehouses: no delta log entry exists, so
            # the entry cannot be upgraded — but it must also never be
            # served stale.
            for site_id, delta in per_site.items():
                cluster.site(site_id).warehouse.append("Flow", delta)
            result = service.submit(COUNT_BY_SOURCE)
        assert result.source == FRESH
        assert result.relation.rows == grown_reference(
            COUNT_BY_SOURCE, per_site
        ).rows

    def test_catalog_change_invalidates(self):
        cluster = build_cluster()
        with QueryService(cluster) as service:
            first = service.submit(COUNT_BY_SOURCE)
            cluster.catalog.add_functional_dependency("SourceAS", "DestAS")
            second = service.submit(COUNT_BY_SOURCE)
            assert second.source == FRESH  # plan could differ: no hit
            assert first.signature.plan_key != second.signature.plan_key
            # The new catalog's slot works normally from here on.
            assert service.submit(COUNT_BY_SOURCE).source == HIT

    def test_signature_version_gaps(self):
        cluster = build_cluster()
        expression = GMDJExpression(
            DistinctBase("Flow", ["SourceAS"]),
            [MDStep("Flow", [MDBlock([count_star("cnt")], base.SourceAS == detail.SourceAS)])],
        )
        old = PlanSignature.compute(cluster, expression)
        assert old.version_gaps(old) == ()
        per_site = make_delta(cluster)
        for site_id, delta in per_site.items():
            cluster.site(site_id).warehouse.append("Flow", delta)
        new = PlanSignature.compute(cluster, expression)
        gaps = old.version_gaps(new)
        assert gaps is not None and len(gaps) == SITES
        assert all(table == "Flow" and newer > older for table, _site, older, newer in gaps)
        # Backwards (a drop/re-register) is never upgrade-comparable.
        assert new.version_gaps(old) is None
        # Neither is a different catalog.
        cluster.catalog.add_functional_dependency("SourceAS", "DestAS")
        assert new.version_gaps(PlanSignature.compute(cluster, expression)) is None


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


class TestConcurrency:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_concurrent_mixed_workload_equals_serial(self, executor, tmp_path):
        import contextlib

        reference_cluster = build_cluster()
        reference = {}
        with QueryService(
            reference_cluster, ExecutionConfig(executor="serial")
        ) as reference_service:
            for sql in (COUNT_BY_SOURCE, MAX_BY_DEST):
                reference[sql] = reference_service.submit(sql).relation

        clients = 8
        batch = [
            (COUNT_BY_SOURCE, MAX_BY_DEST)[index % 2] for index in range(clients)
        ]
        with contextlib.ExitStack() as stack:
            cluster = build_cluster()
            if executor == "sockets":
                # The sockets engine needs real site processes behind it.
                from repro.distributed.deployment import ProcessCluster

                cluster = stack.enter_context(
                    ProcessCluster.from_simulated(cluster, str(tmp_path / "store"))
                )
            service = stack.enter_context(
                QueryService(
                    cluster, ExecutionConfig(executor=executor), max_in_flight=4
                )
            )
            with ThreadPoolExecutor(max_workers=clients) as pool:
                results = list(pool.map(service.submit, batch))
            metrics = service.metrics
            hits = metrics.value_of("service.cache.hit")
            misses = metrics.value_of("service.cache.miss")
            refreshes = metrics.value_of("service.cache.refresh")
            queries = metrics.value_of("service.queries")

        for sql, result in zip(batch, results):
            assert result.relation.rows == reference[sql].rows, sql
        # Accounting reconciles: every query was served exactly one way,
        # and the misses are exactly the evaluations actually run.
        assert hits + misses + refreshes == queries == clients
        assert refreshes == 0
        fresh_count = sum(1 for result in results if result.source == FRESH)
        assert fresh_count == misses >= 2  # both distinct queries evaluated

    def test_span_parent_integrity_under_concurrency(self):
        tracer = Tracer()
        clients = 6
        batch = [
            (COUNT_BY_SOURCE, MAX_BY_DEST)[index % 2] for index in range(clients)
        ]
        with QueryService(
            build_cluster(),
            ExecutionConfig(executor="threads"),
            tracer=tracer,
            max_in_flight=3,
        ) as service:
            with ThreadPoolExecutor(max_workers=clients) as pool:
                results = list(pool.map(service.submit, batch))

        service_spans = tracer.spans_named("service.query")
        assert len(service_spans) == clients
        # service.query spans are roots and carry the serving outcome.
        by_id = {span.span_id: span for span in tracer.spans}
        outcomes = sorted(span.attributes["outcome"] for span in service_spans)
        assert outcomes == sorted(result.source for result in results)
        # Every evaluation ("query") span parents back through its
        # service.execute stage span to exactly one service.query span,
        # and misses line up one-to-one.
        query_spans = tracer.spans_named("query")
        fresh_count = sum(1 for result in results if result.source == FRESH)
        assert len(query_spans) == fresh_count
        for span in query_spans:
            parent = by_id[span.parent_id]
            assert parent.name == "service.execute"
            root = by_id[parent.parent_id]
            assert root.name == "service.query"
            assert root.attributes["outcome"] == FRESH
        # No span lost its parent (concurrent interleaving on the shared
        # tracer must not cross-wire the thread-local stacks).
        for span in tracer.spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id

    def test_append_is_writer_exclusive_and_upgrade_survives_races(self):
        cluster = build_cluster()
        with QueryService(
            cluster, ExecutionConfig(executor="threads"), max_in_flight=4
        ) as service:
            service.submit(COUNT_BY_SOURCE)
            per_site = make_delta(cluster)
            service.append("Flow", per_site)
            with ThreadPoolExecutor(max_workers=6) as pool:
                results = list(
                    pool.map(service.submit, [COUNT_BY_SOURCE] * 6)
                )
        expected = grown_reference(COUNT_BY_SOURCE, per_site).rows
        for result in results:
            assert result.relation.rows == expected
        # Exactly one thread performed the upgrade; the rest hit.
        sources = sorted(result.source for result in results)
        assert sources.count(REFRESH) == 1
        assert sources.count(HIT) == 5


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_queue_full_rejects(self):
        with QueryService(
            build_cluster(), max_in_flight=1, max_queue=0
        ) as service:
            service._acquire_slot(1.0)  # occupy the only slot
            try:
                with pytest.raises(AdmissionError):
                    service.submit(COUNT_BY_SOURCE)
            finally:
                service._release_slot()
            # Slot free again: the same query is served normally.
            assert service.submit(COUNT_BY_SOURCE).source == FRESH
            assert service.metrics.value_of("service.admission.rejected") == 1

    def test_waiter_times_out(self):
        with QueryService(
            build_cluster(), max_in_flight=1, max_queue=4
        ) as service:
            service._acquire_slot(1.0)
            try:
                with pytest.raises(QueryTimeoutError) as excinfo:
                    service.submit(COUNT_BY_SOURCE, timeout_s=0.05)
            finally:
                service._release_slot()
            assert excinfo.value.waited_s >= 0.05
            assert service.metrics.value_of("service.admission.timeout") == 1

    def test_fifo_admission_order(self):
        order = []
        lock = threading.Lock()
        with QueryService(
            build_cluster(), max_in_flight=1, max_queue=8
        ) as service:
            service._acquire_slot(1.0)  # force all clients to queue
            started = threading.Barrier(4)

            def client(tag):
                started.wait()
                # Stagger enqueueing deterministically: each client waits
                # for its predecessor to be in the queue.
                while len(service._queue) < tag:
                    pass
                result = service.submit(COUNT_BY_SOURCE)
                with lock:
                    order.append((tag, result.query_id))

            threads = [
                threading.Thread(target=client, args=(tag,)) for tag in range(4)
            ]
            for thread in threads:
                thread.start()
            while len(service._queue) < 4:
                pass
            service._release_slot()
            for thread in threads:
                thread.join()
        # Queue positions were 0..3; admission (and thus query id
        # assignment) must follow that FIFO order.
        assert [tag for tag, _query_id in sorted(order, key=lambda item: item[1])] == [
            0,
            1,
            2,
            3,
        ]

    def test_closed_service_refuses_new_work(self):
        service = QueryService(build_cluster())
        assert service.submit(COUNT_BY_SOURCE).source == FRESH
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            service.submit(COUNT_BY_SOURCE)

    def test_validation(self):
        cluster = build_cluster()
        with pytest.raises(ServiceError):
            QueryService(cluster, max_in_flight=0)
        with pytest.raises(ServiceError):
            QueryService(cluster, max_queue=-1)
        with pytest.raises(ServiceError):
            QueryService(cluster, admission_timeout_s=0)
        with QueryService(cluster) as service:
            with pytest.raises(ServiceError):
                service.submit(42)


# ---------------------------------------------------------------------------
# Service observability: pre-registered families, latency histogram, query ids
# ---------------------------------------------------------------------------


class TestServiceObservability:
    def test_metric_families_exist_before_any_traffic(self):
        # A /metrics scrape right after startup must show the service
        # families at zero instead of a missing series.
        with QueryService(build_cluster()) as service:
            metrics = service.metrics
            assert metrics.get("service.in_flight") is not None
            assert metrics.get("service.queue.depth") is not None
            assert metrics.get("service.queries") is not None
            assert metrics.get("service.cache.hit") is not None
            assert metrics.get("service.admission.rejected") is not None
            latency = metrics.get("service.latency_s")
            assert latency is not None and latency.count == 0

    def test_latency_histogram_observes_every_submission(self):
        with QueryService(build_cluster()) as service:
            service.submit(COUNT_BY_SOURCE)
            service.submit(COUNT_BY_SOURCE)  # cache hit still has a latency
            service.submit(MAX_BY_DEST)
            latency = service.metrics.get("service.latency_s")
            assert latency.count == 3
            assert latency.sum > 0.0
            assert latency.quantile(0.5) >= 0.0

    def test_prometheus_exposition_of_a_live_service(self):
        from repro.obs import parse_prometheus_text, prometheus_text

        with QueryService(build_cluster()) as service:
            service.submit(COUNT_BY_SOURCE)
            samples = parse_prometheus_text(prometheus_text(service.metrics))
        assert samples["service_queries_total"] == [({}, 1.0)]
        assert "service_latency_s_bucket" in samples
        assert "service_in_flight" in samples

    def test_query_id_threads_into_stats_and_spans(self):
        tracer = Tracer()
        with QueryService(build_cluster(), tracer=tracer) as service:
            first = service.submit(COUNT_BY_SOURCE)
            second = service.submit(MAX_BY_DEST)
        assert first.query_id == 1
        assert second.query_id == 2
        # Fresh evaluations stamp the service query id into the run's stats.
        assert first.stats.query_id == first.query_id
        assert second.stats.query_id == second.query_id
        # Each evaluator root span carries the id it served.
        query_spans = tracer.spans_named("query")
        tagged = {span.attributes.get("query_id") for span in query_spans}
        assert {first.query_id, second.query_id} <= tagged

    def test_cache_hit_keeps_original_stats_query_id(self):
        with QueryService(build_cluster()) as service:
            fresh = service.submit(COUNT_BY_SOURCE)
            hit = service.submit(COUNT_BY_SOURCE)
        assert hit.source == HIT
        assert hit.query_id == 2
        # A pure hit reuses the original evaluation's stats wholesale.
        assert hit.stats.query_id == fresh.query_id


# ---------------------------------------------------------------------------
# Query-lifecycle stages: per-submission breakdown + per-stage/outcome metrics
# ---------------------------------------------------------------------------


class TestLifecycleStages:
    def test_fresh_submission_records_every_stage(self):
        from repro.service.service import STAGES

        with QueryService(build_cluster()) as service:
            result = service.submit(COUNT_BY_SOURCE)
        assert result.outcome == FRESH
        assert set(result.stages) == set(STAGES)
        assert all(seconds >= 0.0 for seconds in result.stages.values())

    def test_hit_skips_plan_and_execute(self):
        with QueryService(build_cluster()) as service:
            service.submit(COUNT_BY_SOURCE)
            hit = service.submit(COUNT_BY_SOURCE)
        assert hit.outcome == HIT
        assert "admission" in hit.stages and "lookup" in hit.stages
        assert "plan" not in hit.stages and "execute" not in hit.stages

    def test_stages_sum_to_end_to_end_latency(self):
        # The acceptance bar: the stage breakdown explains >= 95% of the
        # measured wall time (the remainder is inter-stage glue).
        with QueryService(build_cluster()) as service:
            result = service.submit(COUNT_BY_SOURCE)
        assert result.stage_total_s == pytest.approx(
            sum(result.stages.values())
        )
        assert result.stage_total_s >= 0.95 * result.wall_s
        assert result.stage_total_s <= result.wall_s

    def test_per_stage_histograms_observe_each_submission(self):
        with QueryService(build_cluster()) as service:
            service.submit(COUNT_BY_SOURCE)
            service.submit(COUNT_BY_SOURCE)  # hit
            metrics = service.metrics
        # merge is observed per entry, not per submission: the fresh run
        # merges twice (canonical order + SQL post clauses), the hit once
        # (post clauses over the cached relation).
        for stage, expected in (
            ("admission", 2), ("lookup", 2), ("plan", 1),
            ("execute", 1), ("merge", 3),
        ):
            histogram = metrics.get("service.stage_s", stage=stage)
            assert histogram is not None
            assert histogram.count == expected, stage

    def test_per_outcome_latency_histograms(self):
        with QueryService(build_cluster()) as service:
            service.submit(COUNT_BY_SOURCE)
            service.submit(COUNT_BY_SOURCE)
            metrics = service.metrics
        fresh = metrics.get("service.latency_by_outcome_s", outcome=FRESH)
        hit = metrics.get("service.latency_by_outcome_s", outcome=HIT)
        assert fresh.count == 1 and hit.count == 1
        # The undifferentiated family still sees every submission.
        assert metrics.get("service.latency_s").count == 2

    def test_rejection_lands_in_the_rejected_outcome_series(self):
        from repro.service.service import REJECTED

        with QueryService(
            build_cluster(), max_in_flight=1, max_queue=0
        ) as service:
            service._acquire_slot(1.0)
            try:
                with pytest.raises(AdmissionError):
                    service.submit(COUNT_BY_SOURCE)
            finally:
                service._release_slot()
            rejected = service.metrics.get(
                "service.latency_by_outcome_s", outcome=REJECTED
            )
            assert rejected.count == 1

    def test_stage_families_exist_before_any_traffic(self):
        from repro.service.service import OUTCOMES, STAGES

        with QueryService(build_cluster()) as service:
            metrics = service.metrics
            for stage in STAGES:
                assert metrics.get("service.stage_s", stage=stage) is not None
            for outcome in OUTCOMES:
                assert (
                    metrics.get("service.latency_by_outcome_s", outcome=outcome)
                    is not None
                )

    def test_stage_spans_nest_under_the_service_query_root(self):
        tracer = Tracer()
        with QueryService(build_cluster(), tracer=tracer) as service:
            service.submit(COUNT_BY_SOURCE)
        by_id = {span.span_id: span for span in tracer.spans}
        stage_spans = [
            span for span in tracer.spans if span.name.startswith("service.")
            and span.name != "service.query"
        ]
        assert stage_spans
        for span in stage_spans:
            assert by_id[span.parent_id].name == "service.query"
