"""Unit tests for SkallaSite round evaluation."""

import pytest

from conftest import make_flows
from repro.distributed.site import SkallaSite
from repro.errors import WarehouseError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, MDStep
from repro.gmdj import operator
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.storage import LocalWarehouse

FLOW = make_flows(count=100, seed=21)
KEY = base.SourceAS == detail.SourceAS
KEY_ATTRS = ["SourceAS"]


def make_site():
    return SkallaSite("s0", LocalWarehouse("s0", {"Flow": FLOW}))


def inner_step():
    return MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )


def outer_step():
    return MDStep(
        "Flow",
        [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.m))],
    )


class TestComputeBase:
    def test_distinct_base(self):
        site = make_site()
        result = site.compute_base(DistinctBase("Flow", KEY_ATTRS))
        assert result.same_rows(FLOW.distinct_project(KEY_ATTRS))


class TestEvaluateRound:
    def test_single_step_matches_operator(self):
        site = make_site()
        base_fragment = FLOW.distinct_project(KEY_ATTRS)
        h = site.evaluate_round(base_fragment, [inner_step()], KEY_ATTRS, False)
        expected, _touched = operator.evaluate_sub(
            base_fragment, FLOW, inner_step().blocks
        )
        # H is projected to key + sub columns.
        assert h.schema.names == expected.schema.names  # key is the whole base here
        assert h.same_rows(expected)

    def test_key_projection_drops_extra_base_attrs(self):
        site = make_site()
        base_fragment = FLOW.distinct_project(["SourceAS", "DestAS"])
        h = site.evaluate_round(base_fragment, [inner_step()], KEY_ATTRS, False)
        assert h.schema.names[0] == "SourceAS"
        assert "DestAS" not in h.schema

    def test_independent_reduction_drops_untouched(self):
        site = make_site()
        base_fragment = FLOW.distinct_project(KEY_ATTRS)
        # Add groups that cannot exist at this site.
        from repro.relalg.relation import Relation

        padded = base_fragment.union_all(
            Relation(base_fragment.schema, [(777,), (888,)])
        )
        full = site.evaluate_round(padded, [inner_step()], KEY_ATTRS, False)
        reduced = site.evaluate_round(padded, [inner_step()], KEY_ATTRS, True)
        assert len(full) == len(padded)
        assert len(reduced) == len(base_fragment)
        assert not any(row[0] in (777, 888) for row in reduced.rows)

    def test_chain_evaluates_locally(self):
        site = make_site()
        base_fragment = FLOW.distinct_project(KEY_ATTRS)
        h = site.evaluate_round(
            base_fragment, [inner_step(), outer_step()], KEY_ATTRS, False
        )
        # Reference: run the chain with the plain operator.
        b1 = operator.evaluate(base_fragment, FLOW, inner_step().blocks)
        sub1, _t = operator.evaluate_sub(base_fragment, FLOW, inner_step().blocks)
        sub2, _t = operator.evaluate_sub(b1, FLOW, outer_step().blocks)
        assert h.schema.names == (
            "SourceAS",
            "cnt",
            "m__sum",
            "m__count",
            "big",
        )
        # Row-wise: key + sub1 columns + sub2's new column.
        expected_rows = []
        for row1, row2 in zip(sub1.rows, sub2.rows):
            expected_rows.append(row1 + row2[len(b1.schema):])
        assert sorted(h.rows) == sorted(expected_rows)

    def test_chain_rejects_mixed_detail_tables(self):
        site = make_site()
        other = MDStep("Other", [MDBlock([count_star("x")], KEY)])
        site.warehouse.register("Other", FLOW)
        with pytest.raises(WarehouseError):
            site.evaluate_round(
                FLOW.distinct_project(KEY_ATTRS),
                [inner_step(), other],
                KEY_ATTRS,
                False,
            )


class TestMergedRound:
    def test_merged_base_round(self):
        site = make_site()
        h = site.evaluate_merged_round(
            DistinctBase("Flow", KEY_ATTRS), [inner_step()], KEY_ATTRS
        )
        expected = site.evaluate_round(
            FLOW.distinct_project(KEY_ATTRS), [inner_step()], KEY_ATTRS, False
        )
        assert h.same_rows(expected)
