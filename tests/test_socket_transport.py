"""The process-separated deployment mode, end to end.

Covers the socket transport stack introduced with ``repro cluster up``:
the frame codec and wire-message header, the partition store round-trip,
engine equivalence for every query family over real TCP against the
in-process oracle (bit-identical results, measured socket payload bytes
exactly equal to the modeled ``DirectionStats`` bytes, framing overhead
accounted separately), fault-schedule verdict parity against the
simulated-channel oracle, and the kill-and-rejoin acceptance scenario
(a killed site is excluded per policy; a restarted one serves its
partition from disk and heals the answer).
"""

from __future__ import annotations

import socket

import pytest

from conftest import make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.distributed.deployment import ProcessCluster
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.siteserver import load_site, write_partition_store
from repro.distributed.stats import verify_against_network
from repro.errors import (
    NetworkError,
    PlanError,
    RemoteSiteError,
    SerializationError,
    SiteUnavailableError,
)
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.net.faults import FaultPlan
from repro.net.message import HEADER_BYTES, SHIP_BASE
from repro.net.socket_channel import (
    FLAG_DROPPED,
    FRAME_MSG,
    FRAME_OVERHEAD_BYTES,
    decode_wire_message,
    encode_wire_message,
    map_remote_error,
    read_frame,
    write_frame,
)
from repro.queries.cube import cube_lattice_queries
from repro.queries.unpivot import marginal_queries
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import HashPartitioner

SITES = 4
FLOW = make_flows(count=240, seed=17, routers=8)
KEY = detail.SourceAS == base.SourceAS


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("sum", detail.NumBytes, "s")], KEY)],
    )
    outer = MDStep(
        "Flow",
        [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.s / base.cnt))],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS", "DestAS"]), [inner, outer])


def query_families():
    """One representative expression per paper query family."""
    aggs = [count_star("cnt"), AggSpec("sum", detail.NumBytes, "bytes")]
    families = []
    for subset, expression in cube_lattice_queries(
        "Flow", ["SourceAS", "DestAS"], aggs
    ):
        families.append((f"cube:{'+'.join(subset) or 'apex'}", expression))
        break  # one lattice vertex is enough per family
    for attribute, expression in marginal_queries(
        "Flow", ["SourceAS", "DestAS"], aggs
    ):
        families.append((f"unpivot:{attribute}", expression))
        break
    families.append(("multifeature:correlated", correlated_expression()))
    return families


def build_simulated():
    cluster = SimulatedCluster.with_sites(SITES)
    cluster.load_partitioned("Flow", FLOW, HashPartitioner(["SourceAS"], SITES))
    return cluster


@pytest.fixture(scope="module")
def sim_cluster():
    return build_simulated()


@pytest.fixture(scope="module")
def deployed(sim_cluster, tmp_path_factory):
    root = tmp_path_factory.mktemp("socket-cluster")
    with ProcessCluster.from_simulated(sim_cluster, str(root)) as cluster:
        yield cluster


def run_query(cluster, expression, executor, **config_kwargs):
    cluster.reset_network()
    config = ExecutionConfig(
        executor=executor, retry_backoff_s=0.0, **config_kwargs
    )
    result = execute_query(
        cluster, expression, options=OptimizationOptions.none(), config=config
    )
    assert verify_against_network(result.stats, cluster.network) == []
    return result


# ---------------------------------------------------------------------------
# Frame codec & wire header
# ---------------------------------------------------------------------------


def test_wire_message_round_trips_and_matches_modeled_size():
    payload = b"\x01" * 57
    body = encode_wire_message(SHIP_BASE, 3, payload)
    assert len(body) == HEADER_BYTES + len(payload)  # == Message.size_bytes
    kind, round_index, flags, decoded = decode_wire_message(body)
    assert (kind, round_index, flags, decoded) == (SHIP_BASE, 3, 0, payload)


def test_wire_message_carries_the_dropped_flag():
    body = encode_wire_message(SHIP_BASE, 0, b"x", flags=FLAG_DROPPED)
    _kind, _round, flags, _payload = decode_wire_message(body)
    assert flags & FLAG_DROPPED


def test_wire_message_rejects_garbage():
    with pytest.raises(NetworkError):
        decode_wire_message(b"nonsense")
    body = bytearray(encode_wire_message(SHIP_BASE, 0, b"abc"))
    body[0] ^= 0xFF  # break the magic
    with pytest.raises(NetworkError):
        decode_wire_message(bytes(body))


def test_frames_round_trip_over_a_real_socket_with_known_overhead():
    left, right = socket.socketpair()
    try:
        body = encode_wire_message(SHIP_BASE, 1, b"payload")
        wire_bytes = write_frame(left, FRAME_MSG, body)
        assert wire_bytes == FRAME_OVERHEAD_BYTES + len(body)
        frame_type, received = read_frame(right)
        assert frame_type == FRAME_MSG
        assert received == body
    finally:
        left.close()
        right.close()


def test_read_frame_raises_on_closed_peer():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(ConnectionError):
            read_frame(right)
    finally:
        right.close()


def test_remote_errors_map_to_their_local_classes():
    assert isinstance(
        map_remote_error("SerializationError", "bad bytes"), SerializationError
    )
    assert isinstance(map_remote_error("NetworkError", "desync"), NetworkError)
    # Unknown classes (and non-repro ones) become the fatal catch-all.
    assert isinstance(map_remote_error("ValueError", "boom"), RemoteSiteError)
    assert isinstance(map_remote_error("NoSuchError", "boom"), RemoteSiteError)


# ---------------------------------------------------------------------------
# Partition store
# ---------------------------------------------------------------------------


def test_partition_store_round_trips_every_site(tmp_path):
    cluster = build_simulated()
    root = str(tmp_path / "store")
    write_partition_store(cluster, root)
    for site_id in cluster.site_ids:
        reloaded = load_site(root, site_id)
        original = cluster.sites[site_id].warehouse
        assert reloaded.warehouse.table_names() == original.table_names()
        for table_name in original.table_names():
            assert (
                reloaded.warehouse.table(table_name).rows
                == original.table(table_name).rows
            )


def test_deployed_cluster_mirrors_the_simulated_surface(sim_cluster, deployed):
    assert deployed.site_count == sim_cluster.site_count
    assert deployed.site_ids == sim_cluster.site_ids
    assert (
        deployed.conceptual_table("Flow").rows
        == sim_cluster.conceptual_table("Flow").rows
    )
    assert deployed.data_versions(["Flow"]) == sim_cluster.data_versions(["Flow"])
    # Site *data* lives in another process; reaching for it is a loud error.
    with pytest.raises(PlanError, match="separate process"):
        deployed.site(deployed.site_ids[0])


# ---------------------------------------------------------------------------
# Engine equivalence + byte parity (the tentpole acceptance bar)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,expression", query_families(), ids=[n for n, _e in query_families()]
)
def test_every_query_family_is_bit_identical_over_sockets(
    sim_cluster, deployed, name, expression
):
    oracle = run_query(sim_cluster, expression, "serial")
    over_sockets = run_query(deployed, expression, "sockets")
    assert over_sockets.relation.rows == oracle.relation.rows  # bit-identical
    # The simulation is the byte oracle: modeled bytes agree exactly...
    assert over_sockets.stats.bytes_down == oracle.stats.bytes_down
    assert over_sockets.stats.bytes_up == oracle.stats.bytes_up
    # ...and the measured socket payload equals the model, to the byte.
    stats = over_sockets.stats
    assert stats.transport == "sockets"
    assert stats.socket_bytes_down == stats.bytes_down
    assert stats.socket_bytes_up == stats.bytes_up
    assert stats.socket_parity()
    # Framing is real overhead, reported separately, never zero.
    assert stats.socket_framing_bytes > 0
    assert stats.socket_frames > 0


def test_transport_shows_up_in_stats_dict_and_summary(deployed):
    _name, expression = query_families()[0]
    stats = run_query(deployed, expression, "sockets").stats
    snapshot = stats.to_dict()
    assert snapshot["transport"] == "sockets"
    assert snapshot["socket"]["parity"] is True
    assert snapshot["socket"]["bytes_down"] == stats.bytes_down
    assert snapshot["socket"]["framing_bytes"] == stats.socket_framing_bytes
    summary = stats.summary()
    assert "transport [sockets]" in summary
    assert "framing overhead" in summary


# ---------------------------------------------------------------------------
# Fault semantics over the real transport (satellite: verdict parity)
# ---------------------------------------------------------------------------

ACCEPTANCE_SPEC = (
    "drop site=site1 round=1 dir=up times=1; "
    "crash site=site1 rounds=1-2 times=4"
)


def run_faulty(cluster, executor, faults, **config_kwargs):
    plan = faults if isinstance(faults, FaultPlan) or faults is None else (
        FaultPlan.parse(faults)
    )
    cluster.install_faults(plan)
    try:
        return run_query(
            cluster, correlated_expression(), executor, **config_kwargs
        )
    finally:
        cluster.install_faults(None)


def observe(result):
    """The verdict tuple both transports must agree on."""
    return (
        result.relation.rows,
        result.stats.retries,
        result.stats.excluded_sites,
        result.stats.degraded,
        result.stats.faults,
    )


@pytest.mark.parametrize("failure_mode,max_retries", [("retry", 5), ("degrade", 1)])
def test_acceptance_fault_schedule_verdicts_match_the_simulated_oracle(
    sim_cluster, deployed, failure_mode, max_retries
):
    oracle = run_faulty(
        sim_cluster, "serial", ACCEPTANCE_SPEC,
        failure_mode=failure_mode, max_retries=max_retries,
    )
    over_sockets = run_faulty(
        deployed, "sockets", ACCEPTANCE_SPEC,
        failure_mode=failure_mode, max_retries=max_retries,
    )
    assert observe(over_sockets) == observe(oracle)
    # Parity holds through drops, crashes and retries too.
    assert over_sockets.stats.socket_parity()


def test_seeded_scatter_schedule_verdicts_match_the_simulated_oracle(
    sim_cluster, deployed
):
    plan = FaultPlan.scatter(
        [f"site{index}" for index in range(SITES)],
        seed=23,
        rounds=3,
        drop=0.25,
        delay=0.25,
        duplicate=0.25,
        corrupt=0.2,
    )
    assert plan.rules, "seed produced an empty schedule"
    oracle = run_faulty(
        sim_cluster, "serial", plan, failure_mode="retry", max_retries=4
    )
    over_sockets = run_faulty(
        deployed, "sockets", plan, failure_mode="retry", max_retries=4
    )
    assert observe(over_sockets) == observe(oracle)
    assert over_sockets.stats.socket_parity()


def test_fail_fast_propagates_a_crash_over_sockets(deployed):
    with pytest.raises(SiteUnavailableError):
        run_faulty(
            deployed, "sockets", "crash site=site1 rounds=0-9 times=0",
            failure_mode="fail_fast",
        )


# ---------------------------------------------------------------------------
# Speculative straggler re-execution
# ---------------------------------------------------------------------------

STRAGGLE_DELAY_S = 0.8


def run_straggled(deployed, *, speculation, delay_s=STRAGGLE_DELAY_S, seed=7):
    """One query with a seeded compute delay on one site in round 1."""
    return run_faulty(
        deployed,
        "sockets",
        FaultPlan.stragglers(
            deployed.site_ids, seed=seed, delay_s=delay_s, rounds=(1,)
        ),
        speculation=speculation,
        speculation_factor=2.0,
    )


def test_straggler_speculation_is_bit_identical_with_byte_parity(
    sim_cluster, deployed
):
    """The satellite-4 acceptance: a seeded delay fault triggers a
    speculative backup whose result is bit-identical to the fault-free
    flat run, and the measured socket bytes reconcile with the modeled
    ``DirectionStats`` once the abandoned leg's traffic is included."""
    reference = run_query(sim_cluster, correlated_expression(), "serial")
    result = run_straggled(deployed, speculation=True)

    assert result.relation.rows == reference.relation.rows
    stats = result.stats
    assert stats.speculative_legs == 1
    assert stats.speculation_wins == 1
    # The winning path's modeled bytes equal the fault-free oracle's —
    # the loser's traffic lives only in the speculative buckets.
    assert (stats.bytes_down, stats.bytes_up) == (
        reference.stats.bytes_down,
        reference.stats.bytes_up,
    )
    assert stats.speculative_bytes_down > 0  # the abandoned leg's re-send
    assert stats.socket_parity()
    assert stats.socket_bytes_down == (
        stats.bytes_down + stats.speculative_bytes_down
    )
    assert stats.socket_bytes_up == (
        stats.bytes_up + stats.speculative_bytes_up
    )
    # run_query already ran verify_against_network: per-site totals
    # reconciled with the channels including the speculative buckets.


def test_speculation_beats_the_straggler_wall(deployed):
    """With speculation the delayed round finishes well under the
    injected delay; without it the round wall absorbs the delay whole."""
    with_speculation = run_straggled(deployed, speculation=True)
    spec_wall = max(r.wall_s for r in with_speculation.stats.rounds)
    assert with_speculation.stats.speculation_wins == 1
    assert spec_wall < STRAGGLE_DELAY_S

    baseline = run_straggled(deployed, speculation=False)
    base_wall = max(r.wall_s for r in baseline.stats.rounds)
    assert baseline.stats.speculative_legs == 0
    assert base_wall >= STRAGGLE_DELAY_S
    assert baseline.stats.socket_parity()


def test_speculation_is_inert_without_stragglers(deployed):
    # Generous slack so a CI scheduling hiccup on one healthy leg can
    # never masquerade as a straggler.
    result = run_query(
        deployed, correlated_expression(), "sockets",
        speculation=True, speculation_factor=2.0, speculation_slack_s=0.5,
    )
    assert result.stats.speculative_legs == 0
    assert result.stats.speculation_wins == 0
    assert result.stats.speculative_bytes_down == 0
    assert result.stats.socket_parity()


# ---------------------------------------------------------------------------
# Kill-and-rejoin (the acceptance scenario) — keep last: it restarts a site
# ---------------------------------------------------------------------------


def test_killed_site_is_excluded_and_rejoins_from_disk(sim_cluster, deployed):
    expression = correlated_expression()
    clean = run_query(sim_cluster, expression, "serial")
    victim = deployed.site_ids[1]

    before = run_query(deployed, expression, "sockets")
    assert before.relation.rows == clean.relation.rows

    deployed.kill_site(victim)
    degraded = run_query(
        deployed, expression, "sockets",
        failure_mode="degrade", max_retries=1,
    )
    assert degraded.stats.degraded
    assert {site for _round, site in degraded.stats.excluded_sites} == {victim}
    assert degraded.relation.rows != clean.relation.rows

    deployed.restart_site(victim)
    healed = run_query(
        deployed, expression, "sockets",
        failure_mode="retry", max_retries=2,
    )
    # The restarted site answered from its on-disk partition: exact again.
    assert healed.relation.rows == clean.relation.rows
    assert healed.stats.excluded_sites == ()
