"""Tests for arbitrary-depth spanning-tree networks."""

import pytest

from conftest import assert_relations_equal, make_flows
from repro.distributed import (
    OptimizationOptions,
    SimulatedCluster,
    TreeNode,
    chain_tree,
    execute_query,
    execute_query_spanning,
)
from repro.errors import NetworkError, PlanError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import ValueListPartitioner

FLOW = make_flows(count=360, seed=91, routers=8)
KEY = base.SourceAS == detail.SourceAS


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("avg", detail.NumBytes, "m")], KEY)],
    )
    outer = MDStep(
        "Flow", [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.m))]
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS"]), [inner, outer])


def build_cluster(sites=8):
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned(
        "Flow", FLOW, ValueListPartitioner.spread("SourceAS", range(16), sites)
    )
    return cluster


class TestTreeNode:
    def test_leaves_and_depth(self):
        tree = TreeNode(
            "root",
            (
                TreeNode("r0", (TreeNode("a"), TreeNode("b"))),
                TreeNode("c"),
            ),
        )
        assert set(tree.leaves()) == {"a", "b", "c"}
        assert tree.depth() == 3

    def test_duplicate_names_rejected(self):
        tree = TreeNode("root", (TreeNode("a"), TreeNode("a")))
        with pytest.raises(NetworkError):
            tree.validate()

    def test_chain_tree_shapes(self):
        sites = [f"site{index}" for index in range(8)]
        binary = chain_tree(sites, fanout=2)
        assert set(binary.leaves()) == set(sites)
        assert binary.depth() == 4  # 8 -> 4 -> 2 -> 1
        wide = chain_tree(sites, fanout=8)
        assert wide.depth() == 2

    def test_chain_tree_validation(self):
        with pytest.raises(NetworkError):
            chain_tree([], 2)

    @pytest.mark.parametrize("fanout", [1, 0, -3, 2.0, True])
    def test_chain_tree_boundary_fanouts_raise(self, fanout):
        # A fanout <= 1 can never shrink a level (the grouping loop
        # would spin forever): a caller bug, so ValueError — and raised
        # before any tree node is built.
        with pytest.raises(ValueError, match="fanout"):
            chain_tree(["a", "b", "c"], fanout)

    def test_single_site_wrapped_under_relay(self):
        tree = chain_tree(["only"], 2)
        assert not tree.is_leaf
        assert tree.leaves() == ("only",)


class TestSpanningCorrectness:
    OPTION_SETS = {
        "none": OptimizationOptions.none(),
        "all": OptimizationOptions.all(),
        "reductions": OptimizationOptions(False, False, True, True, False),
        "sync": OptimizationOptions(False, True, False, False, False),
    }

    @pytest.mark.parametrize("fanout", [2, 3, 8])
    @pytest.mark.parametrize("options_name", sorted(OPTION_SETS))
    def test_matches_centralized_all_depths(self, fanout, options_name):
        cluster = build_cluster(8)
        tree = chain_tree(cluster.site_ids, fanout)
        expression = correlated_expression()
        reference = expression.evaluate_centralized(cluster.conceptual_tables())
        result = execute_query_spanning(
            cluster, tree, expression, self.OPTION_SETS[options_name]
        )
        assert_relations_equal(reference, result.relation)

    def test_leaf_root_rejected(self):
        cluster = build_cluster(1)
        with pytest.raises(NetworkError):
            execute_query_spanning(
                cluster,
                TreeNode("site0"),
                correlated_expression(),
                OptimizationOptions.none(),
            )

    def test_tree_must_cover_sites(self):
        cluster = build_cluster(4)
        tree = chain_tree(["site0", "site1"], 2)
        with pytest.raises(PlanError):
            execute_query_spanning(
                cluster, tree, correlated_expression(), OptimizationOptions.none()
            )

    def test_matches_star_result(self):
        cluster = build_cluster(8)
        expression = correlated_expression()
        star = execute_query(cluster, expression, OptimizationOptions.all())
        tree = chain_tree(cluster.site_ids, 2)
        spanning = execute_query_spanning(
            cluster, tree, expression, OptimizationOptions.all()
        )
        assert_relations_equal(star.relation, spanning.relation)


class TestSpanningTraffic:
    def test_root_edges_carry_bounded_traffic(self):
        """Each root edge carries merged sub-results: at most |Q| rows per
        round, independent of the number of sites below it."""
        cluster = build_cluster(8)
        expression = correlated_expression()
        options = OptimizationOptions.none()
        star = execute_query(cluster, expression, options)

        tree = chain_tree(cluster.site_ids, 2)  # depth 4, binary
        result = execute_query_spanning(cluster, tree, expression, options)
        root_bytes = result.stats.root_edge_bytes(tree)
        assert root_bytes < star.stats.bytes_total

    def test_deeper_trees_cost_more_total_bytes(self):
        cluster = build_cluster(8)
        expression = correlated_expression()
        options = OptimizationOptions.none()
        shallow = execute_query_spanning(
            cluster, chain_tree(cluster.site_ids, 8), expression, options
        )
        deep = execute_query_spanning(
            cluster, chain_tree(cluster.site_ids, 2), expression, options
        )
        assert deep.stats.bytes_total > shallow.stats.bytes_total

    def test_response_time_positive(self):
        cluster = build_cluster(8)
        result = execute_query_spanning(
            cluster,
            chain_tree(cluster.site_ids, 2),
            correlated_expression(),
            OptimizationOptions.none(),
        )
        assert result.stats.response_time_s() > 0
        assert len(result.stats.rounds) == 3
