"""Tests for HAVING / ORDER BY / LIMIT in the SQL dialect."""

import pytest

from conftest import make_flows
from repro.queries.sql import (
    SqlError,
    parse_olap_query,
    parse_olap_statement,
)

FLOW = make_flows(count=220, seed=101)
TABLES = {"Flow": FLOW}

BASE_QUERY = (
    "SELECT SourceAS, COUNT(*) AS cnt, AVG(NumBytes) AS m "
    "FROM Flow GROUP BY SourceAS"
)


def run(sql):
    statement = parse_olap_statement(sql)
    relation = statement.expression.evaluate_centralized(TABLES)
    return statement, statement.apply_post(relation)


class TestHaving:
    def test_filters_result(self):
        _statement, result = run(BASE_QUERY + " HAVING cnt >= 20")
        assert len(result) > 0
        cnt = result.schema.position("cnt")
        assert all(row[cnt] >= 20 for row in result.rows)

    def test_having_sees_aggregates_and_keys(self):
        _statement, result = run(BASE_QUERY + " HAVING cnt > 0 AND SourceAS < 8")
        key = result.schema.position("SourceAS")
        assert all(row[key] < 8 for row in result.rows)

    def test_having_arithmetic(self):
        _statement, result = run(BASE_QUERY + " HAVING m / cnt > 0")
        assert len(result) > 0


class TestOrderBy:
    def test_ascending_default(self):
        _statement, result = run(BASE_QUERY + " ORDER BY cnt")
        values = result.column("cnt")
        assert values == sorted(values)

    def test_descending(self):
        _statement, result = run(BASE_QUERY + " ORDER BY cnt DESC")
        values = result.column("cnt")
        assert values == sorted(values, reverse=True)

    def test_mixed_directions(self):
        statement, result = run(BASE_QUERY + " ORDER BY cnt DESC, SourceAS ASC")
        assert statement.order_by == (("cnt", True), ("SourceAS", False))
        rows = result.rows
        for previous, current in zip(rows, rows[1:]):
            assert previous[1] >= current[1]
            if previous[1] == current[1]:
                assert previous[0] <= current[0]


class TestLimit:
    def test_limit(self):
        _statement, result = run(BASE_QUERY + " LIMIT 3")
        assert len(result) == 3

    def test_order_then_limit_gives_top_k(self):
        _statement, result = run(BASE_QUERY + " ORDER BY cnt DESC LIMIT 2")
        full_counts = sorted(
            (
                parse_olap_statement(BASE_QUERY)
                .expression.evaluate_centralized(TABLES)
                .column("cnt")
            ),
            reverse=True,
        )
        assert result.column("cnt") == full_counts[:2]

    def test_limit_must_be_integer(self):
        with pytest.raises(SqlError):
            parse_olap_statement(BASE_QUERY + " LIMIT 2.5")
        with pytest.raises(SqlError):
            parse_olap_statement(BASE_QUERY + " LIMIT many")


class TestClauseOrdering:
    def test_all_clauses_together(self):
        statement, result = run(
            BASE_QUERY + " HAVING cnt >= 5 ORDER BY m DESC LIMIT 4"
        )
        assert statement.has_post_clauses
        assert len(result) <= 4
        values = result.column("m")
        assert values == sorted(values, reverse=True)

    def test_clauses_out_of_order_rejected(self):
        with pytest.raises(SqlError):
            parse_olap_statement(BASE_QUERY + " LIMIT 2 HAVING cnt > 1")

    def test_plain_parse_rejects_post_clauses(self):
        with pytest.raises(SqlError) as info:
            parse_olap_query(BASE_QUERY + " ORDER BY cnt")
        assert "parse_olap_statement" in str(info.value)

    def test_statement_without_post_clauses(self):
        statement = parse_olap_statement(BASE_QUERY)
        assert not statement.has_post_clauses
        relation = statement.expression.evaluate_centralized(TABLES)
        assert statement.apply_post(relation) is relation
