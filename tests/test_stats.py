"""Unit tests for execution statistics and the Theorem 2 bound."""

import pytest

from repro.distributed.stats import (
    ExecutionStats,
    RoundStats,
    check_theorem2,
    theorem2_bound,
)
from repro.net.costmodel import FREE, CostModel

MODEL = CostModel(latency_s=0.01, bandwidth_bytes_per_s=1000)


def populated_stats():
    stats = ExecutionStats()
    base_round = stats.new_round("base", "b")
    site = base_round.site("s0")
    site.bytes_up = 500
    site.tuples_up = 10
    site.compute_s = 0.2
    base_round.coordinator_compute_s = 0.1

    md_round = stats.new_round("md", "m")
    for site_id, (down, up) in {"s0": (1000, 300), "s1": (2000, 100)}.items():
        site = md_round.site(site_id)
        site.bytes_down = down
        site.bytes_up = up
        site.tuples_down = down // 10
        site.tuples_up = up // 10
        site.compute_s = 0.5 if site_id == "s0" else 0.3
    md_round.coordinator_compute_s = 0.05
    return stats


class TestRoundStats:
    def test_site_creates_on_demand(self):
        round_stats = RoundStats(0, "md")
        assert round_stats.site("sX").bytes_down == 0
        assert "sX" in round_stats.sites

    def test_totals(self):
        stats = populated_stats()
        md_round = stats.rounds[1]
        assert md_round.bytes_down == 3000
        assert md_round.bytes_up == 400
        assert md_round.bytes_total == 3400
        assert md_round.tuples_down == 300
        assert md_round.tuples_up == 40

    def test_critical_path_site_compute(self):
        assert populated_stats().rounds[1].site_compute_critical_s() == 0.5

    def test_communication_is_slowest_channel(self):
        md_round = populated_stats().rounds[1]
        # s0: (0.01 + 1.0) + (0.01 + 0.3); s1: (0.01 + 2.0) + (0.01 + 0.1)
        assert md_round.communication_s(MODEL) == pytest.approx(2.12)

    def test_response_time_overlaps_compute_and_transfer(self):
        md_round = populated_stats().rounds[1]
        # s0: 1.01 + 0.5 + 0.31 = 1.82 ; s1: 2.01 + 0.3 + 0.11 = 2.42
        assert md_round.response_time_s(MODEL) == pytest.approx(2.42 + 0.05)

    def test_empty_round_zero_times(self):
        round_stats = RoundStats(0, "md")
        assert round_stats.site_compute_critical_s() == 0.0
        assert round_stats.communication_s(MODEL) == 0.0
        assert round_stats.response_time_s(MODEL) == 0.0


class TestExecutionStats:
    def test_totals_across_rounds(self):
        stats = populated_stats()
        assert stats.round_count == 2
        assert stats.bytes_total == 500 + 3400
        assert stats.bytes_down == 3000
        assert stats.bytes_up == 900
        assert stats.tuples_total == 10 + 340
        assert stats.tuples_up_md() == 40
        assert stats.md_round_count() == 1

    def test_compute_aggregates(self):
        stats = populated_stats()
        assert stats.site_compute_s() == pytest.approx(0.7)
        assert stats.site_compute_total_s() == pytest.approx(1.0)
        assert stats.coordinator_compute_s() == pytest.approx(0.15)

    def test_breakdown_is_additive(self):
        stats = populated_stats()
        breakdown = stats.breakdown(MODEL)
        assert breakdown["total_s"] == pytest.approx(
            breakdown["site_compute_s"]
            + breakdown["coordinator_compute_s"]
            + breakdown["communication_s"]
        )

    def test_free_model_communication_zero_latency(self):
        stats = populated_stats()
        assert stats.communication_s(FREE) == 0.0

    def test_summary_mentions_rounds(self):
        text = populated_stats().summary()
        assert "rounds: 2" in text
        assert "base" in text


class TestSerialization:
    def test_to_dict_is_json_serializable(self):
        import json

        stats = populated_stats()
        snapshot = stats.to_dict(MODEL)
        text = json.dumps(snapshot)
        parsed = json.loads(text)
        assert parsed["bytes_total"] == stats.bytes_total
        assert parsed["rounds"][1]["sites"]["s0"]["bytes_down"] == 1000
        assert "breakdown" in parsed

    def test_to_dict_without_model_omits_breakdown(self):
        snapshot = populated_stats().to_dict()
        assert "breakdown" not in snapshot
        assert snapshot["tuples_total"] == populated_stats().tuples_total


class TestTheorem2:
    def test_bound_formula(self):
        # sum(2 * s_i * |Q|) + s_0 * |Q|
        assert theorem2_bound(100, 4, [4, 4]) == 4 * 100 + 2 * 4 * 100 * 2

    def test_check_accepts_within_bound(self):
        stats = populated_stats()  # 350 tuples total
        assert check_theorem2(stats, 100, 4, [4, 4])

    def test_check_rejects_over_bound(self):
        stats = populated_stats()
        assert not check_theorem2(stats, 1, 1, [1])
