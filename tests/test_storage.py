"""Unit tests for the local warehouse store."""

import pytest

from repro.errors import WarehouseError
from repro.relalg.relation import Relation
from repro.relalg.schema import INT, Schema
from repro.warehouse.storage import LocalWarehouse

SCHEMA = Schema.of(("k", INT),)
RELATION = Relation(SCHEMA, [(1,), (2,)])


class TestLocalWarehouse:
    def test_register_and_lookup(self):
        warehouse = LocalWarehouse("w")
        warehouse.register("T", RELATION)
        assert warehouse.table("T") is RELATION
        assert warehouse.schema("T") is SCHEMA
        assert warehouse.has_table("T")
        assert warehouse.row_count("T") == 2

    def test_constructor_tables(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        assert warehouse.table_names() == ("T",)

    def test_register_replaces(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        other = Relation(SCHEMA, [(9,)])
        warehouse.register("T", other)
        assert warehouse.table("T") is other

    def test_register_requires_relation(self):
        with pytest.raises(WarehouseError):
            LocalWarehouse("w").register("T", [(1,)])

    def test_append(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        warehouse.append("T", Relation(SCHEMA, [(3,)]))
        assert warehouse.row_count("T") == 3

    def test_drop(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        warehouse.drop("T")
        assert not warehouse.has_table("T")
        with pytest.raises(WarehouseError):
            warehouse.drop("T")

    def test_unknown_table_error_lists_tables(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        with pytest.raises(WarehouseError) as info:
            warehouse.table("missing")
        assert "T" in str(info.value)

    def test_tables_view_is_copy(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        view = warehouse.tables()
        view["X"] = RELATION
        assert not warehouse.has_table("X")

    def test_iteration_sorted(self):
        warehouse = LocalWarehouse("w", {"B": RELATION, "A": RELATION})
        assert list(warehouse) == ["A", "B"]

    def test_repr(self):
        warehouse = LocalWarehouse("w", {"T": RELATION})
        assert "T(2)" in repr(warehouse)
