"""The cluster telemetry plane, end to end.

Covers the cross-process observability stack: NTP-style clock-offset
estimation over the PING frame and skew-corrected span replay (no
negative durations, no child-before-parent, with a deliberate ±50 ms
site-clock offset injected via ``REPRO_SITE_CLOCK_OFFSET_S``), per-site
metrics export over the TELEMETRY frame (``ProcessCluster.scrape`` with
``site=`` labels, the ``repro top --cluster`` panel, the degraded
``/healthz``), the crash flight recorder (bounded ring, atomic dumps, a
SIGKILL-ed site leaving a loadable post-mortem), and the speculative-
span exclusion rule (an abandoned straggler attempt's spans are tagged
``speculative`` and never double-counted by EXPLAIN ANALYZE).
"""

from __future__ import annotations

import io
import json
import os
import urllib.error
import urllib.request

import pytest

from conftest import make_flows
from repro.distributed import OptimizationOptions, SimulatedCluster, execute_query
from repro.distributed.deployment import ProcessCluster
from repro.distributed.evaluator import ExecutionConfig
from repro.distributed.siteserver import CLOCK_OFFSET_ENV
from repro.errors import ObservabilityError
from repro.gmdj.blocks import MDBlock
from repro.gmdj.expression import DistinctBase, GMDJExpression, MDStep
from repro.net.faults import FaultPlan
from repro.obs import (
    SCHEMA_VERSION,
    ClockMap,
    ClockSample,
    EventLog,
    FlightRecord,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    align_span,
    build_profile,
    build_trace,
    cluster_sites,
    estimate_offset,
    flight_path,
    load_flight_dir,
    parse_prometheus_text,
    prometheus_text,
    render_top,
    start_metrics_server,
    summarize,
)
from repro.obs.diff import load_artifact
from repro.relalg.aggregates import AggSpec, count_star
from repro.relalg.expressions import base, detail
from repro.warehouse.partition import HashPartitioner

SITES = 4
FLOW = make_flows(count=240, seed=17, routers=8)
KEY = detail.SourceAS == base.SourceAS


def correlated_expression():
    inner = MDStep(
        "Flow",
        [MDBlock([count_star("cnt"), AggSpec("sum", detail.NumBytes, "s")], KEY)],
    )
    outer = MDStep(
        "Flow",
        [MDBlock([count_star("big")], KEY & (detail.NumBytes >= base.s / base.cnt))],
    )
    return GMDJExpression(DistinctBase("Flow", ["SourceAS", "DestAS"]), [inner, outer])


def build_simulated(sites: int = SITES) -> SimulatedCluster:
    cluster = SimulatedCluster.with_sites(sites)
    cluster.load_partitioned("Flow", FLOW, HashPartitioner(["SourceAS"], sites))
    return cluster


@pytest.fixture(scope="module")
def deployed(tmp_path_factory):
    root = tmp_path_factory.mktemp("telemetry-cluster")
    with ProcessCluster.from_simulated(build_simulated(), str(root)) as cluster:
        yield cluster


def run_traced(cluster, **config_kwargs):
    tracer = Tracer()
    registry = MetricsRegistry()
    cluster.reset_network(metrics=registry)
    config = ExecutionConfig(
        executor="sockets", retry_backoff_s=0.0, **config_kwargs
    )
    result = execute_query(
        cluster,
        correlated_expression(),
        options=OptimizationOptions.none(),
        config=config,
        tracer=tracer,
        metrics=registry,
    )
    return result, tracer, registry


def assert_span_invariants(tracer):
    """Skew-corrected replay must never produce impossible timelines."""
    by_id = {span.span_id: span for span in tracer.spans}
    for span in tracer.finished():
        assert span.end_s >= span.start_s, (
            f"negative duration on {span.name}: {span.start_s}..{span.end_s}"
        )
    for span in tracer.spans:
        parent = by_id.get(span.parent_id)
        if parent is None:
            continue
        assert span.start_s >= parent.start_s - 1e-9, (
            f"{span.name} starts before its parent {parent.name}"
        )
        if span.end_s is not None and parent.end_s is not None:
            assert span.end_s <= parent.end_s + 1e-9, (
                f"{span.name} ends after its parent {parent.name}"
            )


# ---------------------------------------------------------------------------
# Clock-skew estimation (unit)
# ---------------------------------------------------------------------------


class TestClockEstimation:
    def test_ntp_offset_and_rtt(self):
        # Site clock runs 1 s ahead; symmetric 0.1 s round trip.
        sample = estimate_offset(0.0, 1.05, 1.05, 0.1)
        assert sample.offset_s == pytest.approx(1.0)
        assert sample.rtt_s == pytest.approx(0.1)
        assert sample.error_bound_s == pytest.approx(0.05)

    def test_offset_sign_convention_site_minus_coordinator(self):
        # Site clock 0.5 s behind: offset is negative.
        sample = estimate_offset(10.0, 9.55, 9.55, 10.1)
        assert sample.offset_s == pytest.approx(-0.5)

    def test_reply_before_request_rejected(self):
        with pytest.raises(ObservabilityError):
            estimate_offset(1.0, 2.0, 2.0, 0.5)  # t3 < t0
        with pytest.raises(ObservabilityError):
            estimate_offset(0.0, 2.0, 1.0, 0.5)  # t2 < t1

    def test_negative_rtt_sample_rejected(self):
        with pytest.raises(ObservabilityError):
            ClockSample(offset_s=0.0, rtt_s=-0.1)

    def test_clock_map_keeps_lowest_rtt_sample(self):
        clock_map = ClockMap()
        clock_map.record("site0", ClockSample(offset_s=0.2, rtt_s=0.5))
        clock_map.record("site0", ClockSample(offset_s=0.1, rtt_s=0.01))
        clock_map.record("site0", ClockSample(offset_s=0.3, rtt_s=0.9))
        assert clock_map.offset_of("site0") == pytest.approx(0.1)
        assert clock_map.sample_of("site0").rtt_s == pytest.approx(0.01)

    def test_unknown_site_has_zero_offset(self):
        clock_map = ClockMap()
        assert clock_map.offset_of("nowhere") == 0.0
        assert clock_map.offset_of(None) == 0.0
        assert "nowhere" not in clock_map

    def test_round_trip(self):
        clock_map = ClockMap()
        clock_map.record("site0", ClockSample(offset_s=0.05, rtt_s=0.002))
        clock_map.record("site1", ClockSample(offset_s=-0.04, rtt_s=0.001))
        loaded = ClockMap.from_dict(clock_map.to_dict())
        assert loaded.to_dict() == clock_map.to_dict()
        assert sorted(loaded.sites()) == ["site0", "site1"]


class TestAlignSpan:
    def test_offset_is_subtracted(self):
        start, end = align_span(10.5, 10.7, 0.5)
        assert (start, end) == (pytest.approx(10.0), pytest.approx(10.2))

    def test_clamp_into_parent_preserves_duration(self):
        # Residual error pushes the span 0.1 s before its parent: shift
        # it forward, keep the measured duration.
        start, end = align_span(0.9, 1.1, 0.0, parent_start_s=1.0, parent_end_s=5.0)
        assert start == pytest.approx(1.0)
        assert end == pytest.approx(1.2)

    def test_end_clamped_to_parent_end(self):
        start, end = align_span(1.0, 9.0, 0.0, parent_start_s=0.0, parent_end_s=2.0)
        assert start == pytest.approx(1.0)
        assert end == pytest.approx(2.0)

    def test_inverted_span_rejected(self):
        with pytest.raises(ObservabilityError):
            align_span(2.0, 1.0, 0.0)


class TestReplaySkew:
    @pytest.mark.parametrize("offset_s", [0.05, -0.05])
    def test_replayed_spans_land_inside_parent(self, offset_s):
        # Parent opens at t=1; everything after (replay's "now", the
        # parent close) happens at t=10, so the remote 2..3 s spans fit.
        times = iter([1.0] + [10.0] * 8)
        tracer = Tracer(clock=times.__next__)
        with tracer.span("parent", kind="round") as parent:
            remote = [
                {
                    "name": "remote.work",
                    "kind": "site",
                    "span_id": 1,
                    "parent_id": None,
                    "start_s": 2.0 + offset_s,
                    "end_s": 3.0 + offset_s,
                    "attributes": {"site": "siteX"},
                },
                {
                    "name": "remote.child",
                    "kind": "site",
                    "span_id": 2,
                    "parent_id": 1,
                    "start_s": 2.2 + offset_s,
                    "end_s": 2.8 + offset_s,
                    "attributes": {},
                },
            ]
            tracer.replay(
                remote, clock_offset_s=offset_s, site_id="siteX", process="site"
            )
        replayed = [span for span in tracer.spans if span.process == "site"]
        assert len(replayed) == 2
        work = next(span for span in replayed if span.name == "remote.work")
        child = next(span for span in replayed if span.name == "remote.child")
        # The offset was removed: back on the coordinator clock.
        assert work.start_s == pytest.approx(2.0)
        assert work.end_s == pytest.approx(3.0)
        assert child.start_s == pytest.approx(2.2)
        # Provenance is stamped for schema v3.
        assert work.site_id == "siteX"
        assert work.clock_offset_s == pytest.approx(offset_s)
        # Remote parentage was re-rooted under the live parent span.
        assert work.parent_id == parent.span_id
        assert child.parent_id == work.span_id
        assert_span_invariants(tracer)

    def test_gross_skew_is_clamped_not_negative(self):
        tracer = Tracer(clock=lambda: 1.0)
        with tracer.span("parent", kind="round"):
            # A span claiming to start long before the parent opened.
            tracer.replay(
                [
                    {
                        "name": "remote.early",
                        "kind": "site",
                        "span_id": 1,
                        "parent_id": None,
                        "start_s": -50.0,
                        "end_s": -49.5,
                        "attributes": {},
                    }
                ],
                clock_offset_s=0.0,
                site_id="siteY",
                process="site",
            )
        assert_span_invariants(tracer)


# ---------------------------------------------------------------------------
# Flight recorder (unit)
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3, process="site", site_id="s0")
        for index in range(5):
            recorder.record_event("tick", index=index)
        assert len(recorder) == 3
        assert recorder.dropped == 2
        kept = [record["index"] for record in recorder.snapshot()]
        assert kept == [2, 3, 4]

    def test_dump_load_round_trip(self, tmp_path):
        recorder = FlightRecorder(capacity=8, process="site", site_id="s1")
        recorder.record_event("boot", port=1234)
        recorder.record_fault(error="RemoteSiteError", message="boom")
        tracer = Tracer(clock=iter([1.0, 2.0]).__next__)
        with tracer.span("round.evaluate", kind="site", site="s1"):
            pass
        recorder.record_spans(tracer.finished())
        path = recorder.dump(flight_path(tmp_path, "site", "s1"))
        assert os.path.basename(path) == "flight-site-s1.jsonl"

        loaded = FlightRecord.load(path)
        assert (loaded.process, loaded.site_id) == ("site", "s1")
        assert len(loaded.records) == 3
        assert loaded.records_of("fault")[0]["message"] == "boom"
        spans = loaded.spans()
        assert [span.name for span in spans] == ["round.evaluate"]
        # Atomic write: no leftover temp file next to the dump.
        assert [name for name in os.listdir(tmp_path) if ".tmp." in name] == []

    def test_to_event_log_is_current_schema(self, tmp_path):
        recorder = FlightRecorder(process="site", site_id="s2")
        tracer = Tracer(clock=iter([1.0, 2.0]).__next__)
        with tracer.span("round.evaluate", kind="site", site="s2"):
            pass
        recorder.record_spans(tracer.finished())
        recorder.record_event("request", kind="round")
        log = recorder.dumps()
        record = FlightRecord.loads(log)
        event_log = record.to_event_log()
        assert event_log.schema_version == SCHEMA_VERSION
        span_records = event_log.records_of("span")
        assert len(span_records) == 1
        assert span_records[0]["process"] == "site"
        assert span_records[0]["site_id"] == "s2"
        # The converted log passes full trace-schema validation.
        assert EventLog.loads(event_log.dumps()) == event_log

    def test_diff_load_artifact_classifies_flight_dumps(self, tmp_path):
        recorder = FlightRecorder(process="coordinator")
        recorder.record_event("query", query_id=9)
        path = recorder.dump(flight_path(tmp_path, "coordinator"))
        kind, payload = load_artifact(path)
        assert kind == "trace"
        assert payload.records_of("event")[0]["query_id"] == 9

    def test_load_flight_dir(self, tmp_path):
        FlightRecorder(process="coordinator").dump(
            flight_path(tmp_path, "coordinator")
        )
        FlightRecorder(process="site", site_id="s0").dump(
            flight_path(tmp_path, "site", "s0")
        )
        records = load_flight_dir(tmp_path)
        assert [record.process for record in records] == ["coordinator", "site"]
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ObservabilityError, match="no flight records"):
            load_flight_dir(empty)
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_flight_dir(tmp_path / "does-not-exist")

    def test_unsupported_version_rejected(self):
        text = FlightRecorder().dumps().replace(
            '"flight_version": 1', '"flight_version": 99'
        )
        with pytest.raises(ObservabilityError, match="version"):
            FlightRecord.loads(text)


# ---------------------------------------------------------------------------
# Metrics merge + /healthz + top panel (unit)
# ---------------------------------------------------------------------------


class TestMergeSnapshot:
    def test_counters_merge_as_deltas(self):
        source = MetricsRegistry()
        source.counter("site.requests").inc(5)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot(), site="s0")
        source.counter("site.requests").inc(2)
        target.merge_snapshot(source.snapshot(), site="s0")
        assert target.counter("site.requests", site="s0").value == 7

    def test_counter_reset_reassigns(self):
        target = MetricsRegistry()
        target.merge_snapshot(
            {"site.requests": {"type": "counter", "value": 10}}, site="s0"
        )
        # The site restarted: its counter went backwards.
        target.merge_snapshot(
            {"site.requests": {"type": "counter", "value": 3}}, site="s0"
        )
        assert target.counter("site.requests", site="s0").value == 3

    def test_gauges_and_histograms_carry_labels(self):
        source = MetricsRegistry()
        source.gauge("site.queue.depth").set(4)
        source.histogram("site.request.seconds", boundaries=(0.1, 1.0)).observe(
            0.5
        )
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot(), site="s3")
        text = prometheus_text(target)
        assert 'site_queue_depth{site="s3"} 4' in text
        assert 'site_request_seconds_bucket{le="1",site="s3"} 1' in text


class TestHealthz:
    def _get(self, url):
        try:
            with urllib.request.urlopen(url, timeout=5.0) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_healthy_with_probe(self):
        with start_metrics_server(
            MetricsRegistry(), health_probe=lambda: []
        ) as server:
            status, health = self._get(
                server.url.replace("/metrics", "/healthz")
            )
        assert status == 200
        assert health["status"] == "ok"
        assert health["dead_sites"] == []

    def test_dead_sites_turn_healthz_degraded(self):
        with start_metrics_server(
            MetricsRegistry(), health_probe=lambda: ["site2", "site0"]
        ) as server:
            status, health = self._get(
                server.url.replace("/metrics", "/healthz")
            )
        assert status == 503
        assert health["status"] == "degraded"
        assert health["dead_sites"] == ["site0", "site2"]

    def test_probe_failure_is_degraded_not_a_crash(self):
        def probe():
            raise OSError("connection refused")

        with start_metrics_server(MetricsRegistry(), health_probe=probe) as server:
            status, health = self._get(
                server.url.replace("/metrics", "/healthz")
            )
        assert status == 503
        assert health["status"] == "degraded"
        assert "OSError" in health["probe_error"]


class TestClusterPanel:
    def samples(self):
        registry = MetricsRegistry()
        registry.gauge("site.up", site="s0").set(1)
        registry.gauge("site.up", site="s1").set(0)
        registry.gauge("site.pid", site="s0").set(4242)
        registry.counter("site.requests", site="s0").inc(7)
        registry.counter("site.rows", site="s0").inc(125)
        registry.counter("site.bytes", site="s0", direction="down").inc(2048)
        registry.counter("site.bytes", site="s0", direction="up").inc(4096)
        registry.gauge("site.queue.depth", site="s0").set(2)
        registry.gauge("site.rss.bytes", site="s0").set(1 << 20)
        return parse_prometheus_text(prometheus_text(registry))

    def test_cluster_sites_reads_site_families(self):
        per_site = cluster_sites(self.samples())
        assert per_site["s0"]["up"] is True
        assert per_site["s1"]["up"] is False
        assert per_site["s0"]["pid"] == 4242
        assert per_site["s0"]["requests"] == 7
        assert per_site["s0"]["rows"] == 125
        assert per_site["s0"]["down"] == 2048
        assert per_site["s0"]["up_bytes"] == 4096
        assert per_site["s0"]["queue_depth"] == 2

    def test_render_top_shows_cluster_panel(self):
        frame = render_top(summarize(self.samples()), "cluster demo")
        assert "cluster sites:" in frame
        assert "s0" in frame and "DOWN" in frame

    def test_no_site_families_no_panel(self):
        frame = render_top(summarize({}), "plain")
        assert "cluster sites:" not in frame


# ---------------------------------------------------------------------------
# Trace schema v3 provenance (unit)
# ---------------------------------------------------------------------------


class TestSchemaV3Provenance:
    def traced(self, clock_map=None):
        tracer = Tracer(clock=iter(float(n) for n in range(1, 50)).__next__)
        with tracer.span("query", kind="query"):
            pass
        return build_trace(tracer, MetricsRegistry(), clock_map=clock_map)

    def test_span_records_carry_process(self):
        log = self.traced()
        assert all(
            record["process"] == "coordinator"
            for record in log.records_of("span")
        )

    def test_clock_record_round_trips(self):
        clock_map = ClockMap()
        clock_map.record("site0", ClockSample(offset_s=0.05, rtt_s=0.001))
        log = self.traced(clock_map=clock_map)
        loaded = EventLog.loads(log.dumps())
        clocks = loaded.records_of("clock")
        assert len(clocks) == 1
        assert clocks[0]["sites"]["site0"]["offset_s"] == pytest.approx(0.05)

    def test_v2_trace_still_loads(self):
        lines = [
            {"record": "header", "schema_version": 2, "generator": "repro.obs"},
            {
                "record": "span",
                "name": "query",
                "kind": "query",
                "span_id": 1,
                "parent_id": None,
                "start_s": 0.0,
                "end_s": 1.0,
                "attributes": {},
                "query_id": 4,
            },
        ]
        text = "\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n"
        log = EventLog.loads(text)
        assert log.schema_version == 2
        assert log.query_ids() == [4]

    def test_provenance_rejected_below_v3(self):
        from repro.errors import TraceSchemaError

        lines = [
            {"record": "header", "schema_version": 2, "generator": "repro.obs"},
            {
                "record": "span",
                "name": "query",
                "kind": "query",
                "span_id": 1,
                "parent_id": None,
                "start_s": 0.0,
                "end_s": 1.0,
                "attributes": {},
                "process": "site",
            },
        ]
        text = "\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n"
        with pytest.raises(TraceSchemaError, match="schema version >= 3"):
            EventLog.loads(text)


# ---------------------------------------------------------------------------
# Live cluster: skew-corrected tracing with an injected ±50 ms offset
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("injected_offset_s", [0.05, -0.05])
def test_skewed_site_clocks_are_corrected(
    tmp_path_factory, monkeypatch, injected_offset_s
):
    """Sites running ±50 ms off the coordinator clock still produce a
    coherent merged timeline: the PING exchange measures the offset and
    replay removes it before re-rooting the shipped spans."""
    monkeypatch.setenv(CLOCK_OFFSET_ENV, str(injected_offset_s))
    root = tmp_path_factory.mktemp(f"skew-{injected_offset_s:+.2f}")
    simulated = build_simulated(sites=2)
    with ProcessCluster.from_simulated(simulated, str(root)) as cluster:
        result, tracer, _registry = run_traced(cluster)

    offsets = {
        site_id: entry["offset_s"]
        for site_id, entry in result.stats.clock_offsets.items()
    }
    assert sorted(offsets) == ["site0", "site1"]
    for measured in offsets.values():
        # Loopback RTT is far below 50 ms, so the estimate is tight.
        assert measured == pytest.approx(injected_offset_s, abs=0.02)

    assert_span_invariants(tracer)
    site_spans = [span for span in tracer.spans if span.process == "site"]
    assert site_spans, "no site spans were replayed"
    assert {span.site_id for span in site_spans} == {"site0", "site1"}
    for span in site_spans:
        assert span.clock_offset_s == pytest.approx(injected_offset_s, abs=0.02)

    # The trace artifact records the clock map alongside the spans.
    log = build_trace(
        tracer,
        MetricsRegistry(),
        result.stats,
        clock_map=ClockMap.from_dict(result.stats.clock_offsets),
    )
    loaded = EventLog.loads(log.dumps())
    assert loaded.records_of("clock")
    assert any(
        record.get("process") == "site" for record in loaded.records_of("span")
    )
    assert "clock sync: 2 site(s)" in result.stats.summary()


# ---------------------------------------------------------------------------
# Live cluster: per-site metrics export
# ---------------------------------------------------------------------------


def test_scrape_aggregates_per_site_registries(deployed):
    result, _tracer, registry = run_traced(deployed)
    assert result.stats.rounds

    # Reply piggyback: per-site liveness gauges with site= labels landed
    # in the run's own registry without any extra round trip.
    piggyback = prometheus_text(registry)
    assert 'site_requests_total{site="site0"}' in piggyback
    assert 'site_rss_bytes{site=' in piggyback

    scraped = deployed.scrape(MetricsRegistry())
    text = prometheus_text(scraped)
    samples = parse_prometheus_text(text)
    for site_id in deployed.site_ids:
        assert ({"site": site_id}, 1.0) in samples["site_up"]
    per_site = cluster_sites(samples)
    assert sorted(per_site) == sorted(deployed.site_ids)
    for site_id in deployed.site_ids:
        assert per_site[site_id]["up"] is True
        assert per_site[site_id]["requests"] >= 1
        assert per_site[site_id]["pid"]
    frame = render_top(summarize(samples), "cluster")
    assert "cluster sites:" in frame

    assert deployed.dead_sites() == []


def test_cluster_top_panel_via_cli(deployed, capsys):
    from repro.cli import main

    code = main(
        ["top", "--cluster", deployed.root, "--iterations", "1"],
        out=io.StringIO(),
    )
    assert code == 0


# ---------------------------------------------------------------------------
# Speculative straggler: abandoned spans excluded from profiles
# ---------------------------------------------------------------------------


def test_abandoned_speculative_spans_are_excluded_from_profiles(deployed):
    """Satellite regression: a seeded straggler triggers speculation; the
    abandoned attempt's spans are tagged ``speculative=True`` and EXPLAIN
    ANALYZE does not double-count them in per-stage totals."""
    deployed.install_faults(
        FaultPlan.stragglers(deployed.site_ids, seed=7, delay_s=0.8, rounds=(1,))
    )
    try:
        result, tracer, _registry = run_traced(
            deployed, speculation=True, speculation_factor=2.0
        )
    finally:
        deployed.install_faults(None)

    assert result.stats.speculative_legs == 1
    speculative = [
        span for span in tracer.spans if span.attributes.get("speculative")
    ]
    assert speculative, "the abandoned attempt left no tagged spans"
    victims = {span.attributes.get("site") for span in speculative}
    assert len(victims) == 1  # only the straggler's leg was tagged

    profile = build_profile(tracer.finished(), result.stats)
    straggled_round = next(
        round_profile
        for round_profile in profile.rounds
        if round_profile.index == 1
    )
    encode = next(
        operator
        for operator in straggled_round.coordinator_operators
        if operator.name == "round.encode"
    )
    # One encode per site: the abandoned attempt's duplicate encode span
    # was skipped, not absorbed.
    assert encode.calls == len(deployed.site_ids)


# ---------------------------------------------------------------------------
# Live cluster: kill + flight dump post-mortem (keep last: kills a site)
# ---------------------------------------------------------------------------


def test_killed_site_leaves_a_loadable_flight_dump(deployed, tmp_path):
    result, _tracer, _registry = run_traced(deployed)
    assert result.stats.rounds
    victim = deployed.site_ids[-1]
    deployed.kill_site(victim)

    assert deployed.dead_sites() == [victim]
    assert deployed.liveness()[victim] is False

    paths = deployed.dump_flight()
    names = sorted(os.path.basename(path) for path in paths)
    assert "flight-coordinator.jsonl" in names
    assert f"flight-site-{victim}.jsonl" in names

    # The dead site's dump is its last per-request crash dump — loadable,
    # and convertible into trace tooling's EventLog.
    victim_path = next(path for path in paths if victim in path)
    record = FlightRecord.load(victim_path)
    assert record.site_id == victim
    assert record.records_of("request") or record.records_of("event")
    log = record.to_event_log()
    assert log.schema_version == SCHEMA_VERSION
    assert log.records_of("span"), "crash dump lost the site's spans"

    # The coordinator ring recorded the kill and the query lifecycle.
    coordinator = FlightRecord.load(
        next(path for path in paths if "coordinator" in path)
    )
    events = {record.get("name") for record in coordinator.records_of("event")}
    assert "kill" in events
    assert "query" in events

    # `repro trace --flight` renders the post-mortem without a live site.
    from repro.cli import main

    out = io.StringIO()
    assert main(["trace", "--flight", victim_path], out=out) == 0
    rendered = out.getvalue()
    assert f"site {victim}" in rendered
    assert "span" in rendered

    deployed.restart_site(victim)
    assert deployed.dead_sites() == []
