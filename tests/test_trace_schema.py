"""Trace schema versions: query_id stamping (v2), span provenance (v3),
v1/v2 compatibility, mixed-version rejection."""

import json

import pytest

from repro.errors import TraceSchemaError
from repro.obs import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    EventLog,
    MetricsRegistry,
    Tracer,
    build_trace,
)


class FakeClock:
    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class FakePlan:
    notes = ("coalescing skipped: no adjacent mergeable steps",)

    def describe(self) -> str:
        return "round 1: 1 step(s) on 2 site(s)"


def traced_query(query_id=None) -> EventLog:
    tracer = Tracer(clock=FakeClock())
    attrs = {} if query_id is None else {"query_id": query_id}
    with tracer.span("query", kind="query", **attrs):
        with tracer.span("round", kind="round", index=0):
            with tracer.span("round.evaluate", kind="site", site="site0"):
                pass
    registry = MetricsRegistry()
    registry.counter("gmdj.tuples_emitted").inc(5)
    return build_trace(tracer, registry, plan=FakePlan(), query_id=query_id)


def v1_text() -> str:
    """A handwritten v1 trace: no query_id, no plan records."""
    lines = [
        {"record": "header", "schema_version": 1, "generator": "repro.obs"},
        {
            "record": "span",
            "name": "query",
            "kind": "query",
            "span_id": 1,
            "parent_id": None,
            "start_s": 0.0,
            "end_s": 1.0,
            "attributes": {},
        },
        {"record": "metric", "name": "gmdj.tuples_emitted", "type": "counter",
         "value": 5},
    ]
    return "\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n"


class TestSchemaVersions:
    def test_current_version_is_three(self):
        assert SCHEMA_VERSION == 3
        assert SUPPORTED_SCHEMA_VERSIONS == (1, 2, 3)

    def test_v1_trace_loads_without_query_id(self):
        log = EventLog.loads(v1_text())
        assert log.schema_version == 1
        assert log.query_ids() == []
        assert len(log.records_of("span")) == 1
        # And v1 round-trips losslessly through the v1 header.
        assert EventLog.loads(log.dumps()) == log

    def test_current_round_trip_is_lossless(self):
        log = traced_query(query_id=7)
        loaded = EventLog.loads(log.dumps())
        assert loaded == log
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.query_ids() == [7]
        assert loaded.records_of("plan")[0]["describe"].startswith("round 1")

    def test_query_id_stamped_on_every_record(self):
        log = traced_query(query_id="q-42")
        assert all(record.get("query_id") == "q-42" for record in log.records)

    def test_query_id_rejected_in_v1(self):
        text = v1_text().replace(
            '"record": "metric"', '"query_id": 9, "record": "metric"'
        )
        with pytest.raises(TraceSchemaError, match="line 3.*schema version >= 2"):
            EventLog.loads(text)

    def test_query_id_must_be_int_or_str(self):
        log = traced_query(query_id=1)
        log.records[0]["query_id"] = [1, 2]
        with pytest.raises(TraceSchemaError, match="integer or string"):
            log.validate()

    def test_mixed_versions_rejected_with_line_number(self):
        concatenated = traced_query(query_id=1).dumps() + v1_text()
        with pytest.raises(TraceSchemaError) as excinfo:
            EventLog.loads(concatenated)
        message = str(excinfo.value)
        assert "mixed trace schema versions" in message
        # The offending header is the first line of the second trace.
        expected_line = len(traced_query(query_id=1).dumps().splitlines()) + 1
        assert f"line {expected_line}" in message

    def test_duplicate_same_version_header_rejected(self):
        text = traced_query(query_id=1).dumps()
        doubled = text + text
        with pytest.raises(TraceSchemaError, match="second header"):
            EventLog.loads(doubled)

    def test_unsupported_version_rejected(self):
        text = v1_text().replace('"schema_version": 1', '"schema_version": 99')
        with pytest.raises(TraceSchemaError, match="unsupported"):
            EventLog.loads(text)


class TestForQuery:
    def test_for_query_filters_spans_and_records(self):
        first = traced_query(query_id=1)
        second = traced_query(query_id=2)
        # Renumber the second run's span ids so a shared file stays unambiguous.
        offset = 100
        for record in second.records:
            if record["record"] == "span":
                record["span_id"] += offset
                if record["parent_id"] is not None:
                    record["parent_id"] += offset
        shared = EventLog(first.records + second.records)
        assert shared.query_ids() == [1, 2]

        only_first = shared.for_query(1)
        assert only_first.query_ids() == [1]
        # Descendant spans (round, site) follow their root via parent_id
        # even though only the root span carries the attribute.
        assert len(only_first.records_of("span")) == 3
        assert len(only_first.records_of("plan")) == 1

    def test_for_query_keeps_schema_version(self):
        log = traced_query(query_id=1)
        assert log.for_query(1).schema_version == log.schema_version
