"""Unit tests for tree-topology statistics math (hand-computed cases)."""

import pytest

from repro.distributed.hierarchy import TreeLinkStats, TreeRoundStats, TreeStats
from repro.distributed.spanning import (
    EdgeStats,
    SpanningRoundStats,
    SpanningStats,
    TreeNode,
)
from repro.net.costmodel import CostModel

MODEL = CostModel(latency_s=0.0, bandwidth_bytes_per_s=1000)  # 1 KB/s, no latency


class TestTreeRoundStats:
    def make_round(self):
        round_stats = TreeRoundStats(index=0, kind="md")
        region = round_stats.region("r0")
        region.bytes_down = 1000  # 1.0 s
        region.bytes_up = 500  # 0.5 s
        region.compute_s = 0.1
        site_a = round_stats.site("r0", "s0")
        site_a.bytes_down = 2000  # 2.0 s
        site_a.bytes_up = 1000  # 1.0 s
        site_a.compute_s = 0.3
        site_b = round_stats.site("r0", "s1")
        site_b.bytes_down = 100
        site_b.bytes_up = 100
        site_b.compute_s = 0.05
        round_stats.root_compute_s = 0.2
        return round_stats

    def test_response_time_composition(self):
        round_stats = self.make_round()
        # slowest site: s0 = 2.0 + 0.3 + 1.0 = 3.3
        # region: 1.0 (down) + 3.3 + 0.1 (merge) + 0.5 (up) = 4.9
        # + root compute 0.2 = 5.1
        assert round_stats.response_time_s(MODEL) == pytest.approx(5.1)

    def test_separate_site_model(self):
        fast = CostModel(latency_s=0.0, bandwidth_bytes_per_s=1_000_000)
        round_stats = self.make_round()
        # site legs now ~free: slowest site = 0.3 + ~0.003
        value = round_stats.response_time_s(MODEL, site_model=fast)
        assert value == pytest.approx(1.0 + 0.3 + 0.003 + 0.1 + 0.5 + 0.2, abs=0.01)

    def test_byte_split(self):
        round_stats = self.make_round()
        assert round_stats.root_link_bytes == 1500
        assert round_stats.site_link_bytes == 3200

    def test_tree_stats_totals(self):
        stats = TreeStats()
        stats.rounds.append(self.make_round())
        assert stats.bytes_total == 4700
        assert stats.response_time_s(MODEL) == pytest.approx(5.1)


class TestSpanningRoundStats:
    def make_round(self):
        #        root
        #        /  \
        #     relay  s2
        #     /   \
        #    s0   s1
        round_stats = SpanningRoundStats(index=0, kind="md", root_name="root")
        round_stats.children["root"] = ("relay", "s2")
        round_stats.children["relay"] = ("s0", "s1")
        round_stats.edges["relay"] = EdgeStats(bytes_down=1000, bytes_up=500, compute_s=0.1)
        round_stats.edges["s0"] = EdgeStats(bytes_down=2000, bytes_up=1000, compute_s=0.3)
        round_stats.edges["s1"] = EdgeStats(bytes_down=100, bytes_up=100, compute_s=0.05)
        round_stats.edges["s2"] = EdgeStats(bytes_down=400, bytes_up=200, compute_s=0.2)
        round_stats.root_compute_s = 0.2
        return round_stats

    def test_recursive_critical_path(self):
        round_stats = self.make_round()
        # relay subtree: 1.0 + max(2.0+0.3+1.0, 0.1+0.05+0.1) + 0.1 + 0.5 = 4.9
        # s2: 0.4 + 0.2 + 0.2 = 0.8
        # max(4.9, 0.8) + root 0.2 = 5.1
        assert round_stats.response_time_s(MODEL) == pytest.approx(5.1)

    def test_bytes_at_depth(self):
        round_stats = self.make_round()
        assert round_stats.bytes_at_depth(["relay", "s2"]) == 1500 + 600
        assert round_stats.bytes_total == 1500 + 3000 + 200 + 600

    def test_stats_root_edge_bytes(self):
        stats = SpanningStats()
        stats.rounds.append(self.make_round())
        tree = TreeNode(
            "root",
            (TreeNode("relay", (TreeNode("s0"), TreeNode("s1"))), TreeNode("s2")),
        )
        assert stats.root_edge_bytes(tree) == 2100
        assert stats.response_time_s(MODEL) == pytest.approx(5.1)
